"""The MBR composition engine, as a pipeline of typed stages.

This ties Sections 2-4 together.  Each incremental pass runs the stage
pipeline **analyze → graph → partition → enumerate → solve → apply**, and
the run finishes with **scan → legalize**:

* *analyze* — per-register compatibility analysis;
* *graph* — the compatibility graph;
* *partition* — clock-pin-driven decomposition into ≤30-node subgraphs;
* *enumerate* — weighted candidate MBRs per subgraph;
* *solve* — the set-partitioning ILPs, detached into pure picklable
  :class:`~repro.core.subproblem.SubproblemSpec` s and (optionally) fanned
  out across a process pool (``ComposerConfig.workers``);
* *apply* — map, place, and commit every selected candidate (serial: it
  mutates the netlist and the scan model);
* *scan* / *legalize* — chain reordering/restitching and row legalization.

Every stage execution is timed into the :class:`CompositionResult.trace`
(:class:`repro.engine.StageTrace`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.candidates import CandidateConfig, CandidateMBR, enumerate_candidates
from repro.core.compatibility import (
    CompatibilityConfig,
    RegisterInfo,
    analyze_registers,
)
from repro.core.graph import build_compatibility_graph
from repro.core.mbr_placement import place_mbr
from repro.core.partition import DEFAULT_MAX_NODES, partition_graph
from repro.core.subproblem import make_spec, solve_subproblems
from repro.engine import FlowContext, Pipeline, StageTrace, stage
from repro.geometry.rect import Rect
from repro.netlist.design import Design
from repro.netlist.edit import ComposeError, compose_mbr
from repro.netlist.registers import RegisterBit, RegisterView
from repro.placement.legalize import LegalizeResult, PlacementRows, legalize
from repro.scan.model import ScanModel
from repro.sta.timer import Timer


@dataclass
class ComposerConfig:
    """All knobs of one composition run."""

    compatibility: CompatibilityConfig = field(default_factory=CompatibilityConfig)
    candidates: CandidateConfig = field(default_factory=CandidateConfig)
    max_subgraph_nodes: int = DEFAULT_MAX_NODES
    solver: str = "exact"  # "exact" (our branch-and-bound) or "scipy"
    placement_method: str = "pwl"  # "pwl" or "lp"
    run_legalize: bool = True
    legalize_max_displacement: float | None = None
    passes: int = 2
    """Incremental composition passes.  The paper applies composition
    incrementally, including on MBRs composed earlier; a second pass over
    the re-analyzed design merges newly-adjacent MBRs (e.g. two fresh 4-bit
    cells into an 8-bit) and groups whose polygons became clean when their
    blockers merged away."""
    workers: int = 1
    """Process-pool width of the solve stage.  The per-subgraph ILPs are
    independent (Section 3), so they fan out across processes; ``1`` keeps
    the historical in-process serial path.  Both paths are bit-identical."""


@dataclass
class ComposedGroup:
    """One applied composition."""

    new_cell: str
    libcell: str
    members: tuple[str, ...]
    bits: int
    weight: float
    incomplete: bool


@dataclass
class CompositionResult:
    """Statistics and records of a composition run."""

    composed: list[ComposedGroup] = field(default_factory=list)
    rejected: list[tuple[tuple[str, ...], str]] = field(default_factory=list)
    registers_before: int = 0
    registers_after: int = 0
    composable_registers: int = 0
    subgraphs: int = 0
    candidates_considered: int = 0
    ilp_nodes: int = 0
    runtime_seconds: float = 0.0
    legalization: LegalizeResult | None = None
    trace: StageTrace | None = None

    @property
    def register_reduction(self) -> int:
        return self.registers_before - self.registers_after


@dataclass
class ComposeState(FlowContext):
    """Shared context of the composition pipeline (one run, all passes)."""

    config: ComposerConfig = field(default_factory=ComposerConfig)
    result: CompositionResult = field(default_factory=CompositionResult)
    workers: int = 1
    pass_index: int = 0
    infos: dict[str, RegisterInfo] = field(default_factory=dict)
    all_regs: object | None = None
    graph: object | None = None
    parts: list = field(default_factory=list)
    candidates: list[list[CandidateMBR]] = field(default_factory=list)
    chosen: list[CandidateMBR] = field(default_factory=list)
    new_cells: list = field(default_factory=list)
    pass_cells: list = field(default_factory=list)


@stage("analyze")
def _stage_analyze(state: ComposeState):
    """Re-analyze every register's compatibility profile."""
    state.infos = analyze_registers(
        state.design, state.timer, state.scan_model, state.config.compatibility
    )
    if state.pass_index == 0:
        state.result.composable_registers = sum(
            1 for i in state.infos.values() if i.composable
        )
    from repro.core.weights import RegisterField

    state.all_regs = RegisterField(list(state.infos.values()))
    return {"registers": len(state.infos)}


@stage("graph")
def _stage_graph(state: ComposeState):
    """Build the compatibility graph."""
    state.graph = build_compatibility_graph(
        state.infos, state.scan_model, state.config.compatibility
    )
    return {
        "nodes": state.graph.number_of_nodes(),
        "edges": state.graph.number_of_edges(),
    }


@stage("partition")
def _stage_partition(state: ComposeState):
    """Cut the graph into independent ≤max_nodes subgraphs."""
    state.parts = partition_graph(state.graph, state.config.max_subgraph_nodes)
    state.result.subgraphs += len(state.parts)
    return {"subgraphs": len(state.parts)}


@stage("enumerate")
def _stage_enumerate(state: ComposeState):
    """Enumerate and weigh candidate MBRs per subgraph."""
    state.candidates = [
        enumerate_candidates(
            part,
            state.all_regs,
            state.design.library,
            state.scan_model,
            state.config.candidates,
        )
        for part in state.parts
    ]
    count = sum(len(c) for c in state.candidates)
    state.result.candidates_considered += count
    return {"candidates": count}


@stage("solve")
def _stage_solve(state: ComposeState):
    """Solve every subgraph's set-partitioning ILP (pure; fans out)."""
    specs = [
        make_spec(i, part.nodes, cands, state.config.solver)
        for i, (part, cands) in enumerate(zip(state.parts, state.candidates))
    ]
    results = solve_subproblems(specs, workers=state.workers)
    chosen: list[CandidateMBR] = []
    nodes = 0
    for res, cands in zip(results, state.candidates):
        nodes += res.nodes_explored
        chosen.extend(c for c in (cands[i] for i in res.chosen) if not c.is_singleton)
    state.result.ilp_nodes += nodes
    state.chosen = chosen
    return {
        "subproblems": len(specs),
        "ilp_nodes": nodes,
        "chosen": len(chosen),
        "workers": state.workers,
    }


@stage("apply")
def _stage_apply(state: ComposeState):
    """Map, place, and commit the selected candidates (mutates the design)."""
    with state.design.track() as tracker:
        state.pass_cells = _apply_candidates(
            state.design,
            state.chosen,
            state.infos,
            state.scan_model,
            state.config,
            state.result,
        )
    state.new_cells = [
        c for c in state.new_cells if c.name in state.design.cells
    ] + state.pass_cells
    state.timer.apply_change(tracker.record())
    return {"composed": len(state.pass_cells)}


@stage("scan")
def _stage_scan(state: ComposeState):
    """Reorder and restitch scan chains around the new MBRs."""
    if state.scan_model is None:
        return {"chains": 0}
    state.scan_model.reorder_chains(state.design)
    with state.design.track() as tracker:
        state.scan_model.restitch(state.design)
    state.timer.apply_change(tracker.record())
    return {"chains": len(state.scan_model.chains)}


@stage("legalize")
def _stage_legalize(state: ComposeState):
    """Row-legalize the freshly placed MBRs."""
    live = [c for c in state.new_cells if c.name in state.design.cells]
    if not (state.config.run_legalize and live):
        return {"moved": 0}
    rows = PlacementRows(
        state.design.die,
        state.design.library.technology.row_height,
        state.design.library.technology.site_width,
    )
    with state.design.track() as tracker:
        state.result.legalization = legalize(
            state.design,
            rows,
            movable=live,
            max_displacement=state.config.legalize_max_displacement,
        )
    state.timer.apply_change(tracker.record())
    return {"moved": len(state.result.legalization.moved)}


PASS_PIPELINE: Pipeline[ComposeState] = Pipeline(
    (
        _stage_analyze,
        _stage_graph,
        _stage_partition,
        _stage_enumerate,
        _stage_solve,
        _stage_apply,
    )
)

FINALIZE_PIPELINE: Pipeline[ComposeState] = Pipeline((_stage_scan, _stage_legalize))


def compose_design(
    design: Design,
    timer: Timer,
    scan_model: ScanModel | None = None,
    config: ComposerConfig | None = None,
    workers: int | None = None,
) -> CompositionResult:
    """Run the full placement-aware ILP composition on a placed design.

    The design is edited in place; ``timer`` absorbs every edit through
    scoped :meth:`~repro.sta.timer.Timer.apply_change` calls (dirty-cone
    retiming instead of full invalidation).  ``workers`` overrides ``config.workers`` (process-pool width of the
    solve stage; any value returns bit-identical results).  Returns the
    :class:`CompositionResult` record, including its stage
    :class:`~repro.engine.StageTrace`.
    """
    config = config or ComposerConfig()
    t0 = time.perf_counter()
    result = CompositionResult(registers_before=design.total_register_count())
    trace = StageTrace()
    state = ComposeState(
        design,
        timer,
        scan_model,
        config=config,
        result=result,
        workers=config.workers if workers is None else workers,
    )

    for pass_index in range(max(1, config.passes)):
        state.pass_index = pass_index
        PASS_PIPELINE.run(state, trace)
        if not state.pass_cells:
            break

    FINALIZE_PIPELINE.run(state, trace)

    result.registers_after = design.total_register_count()
    result.runtime_seconds = time.perf_counter() - t0
    result.trace = trace
    return result


def _bit_order(
    members: list[RegisterInfo], scan_model: ScanModel | None
) -> list[RegisterBit]:
    """Old register bits in the order they take the new cell's bit slots.

    Members on a scan chain come in chain order (so an internal-scan MBR
    preserves it); remaining members follow in name order.
    """

    def sort_key(info: RegisterInfo):
        if scan_model is not None:
            chain = scan_model.chain_of(info.name)
            if chain is not None:
                return (0, chain.name, chain.position(info.name))
        return (1, info.name, 0)

    ordered = sorted(members, key=sort_key)
    bits: list[RegisterBit] = []
    for info in ordered:
        bits.extend(RegisterView(info.cell).connected_bits())
    return bits


def _bit_map(bit_order: list[RegisterBit]) -> dict[str, tuple[int, ...]]:
    """Map each source register to the new-cell bit indices it occupies."""
    mapping: dict[str, list[int]] = {}
    for new_index, old_bit in enumerate(bit_order):
        mapping.setdefault(old_bit.cell.name, []).append(new_index)
    return {name: tuple(indices) for name, indices in mapping.items()}


def _apply_candidates(
    design: Design,
    chosen: list[CandidateMBR],
    infos: dict[str, RegisterInfo],
    scan_model: ScanModel | None,
    config: ComposerConfig,
    result: CompositionResult,
):
    """Map, place, and commit every selected multi-register candidate."""
    new_cells = []
    for cand in sorted(chosen, key=lambda c: (-c.bits, c.members)):
        members = [infos[m] for m in cand.members]
        target = cand.mapping.cell
        bit_order = _bit_order(members, scan_model)
        region = _placement_window(design, cand.region.rect, target)
        origin = place_mbr(region, target, bit_order, method=config.placement_method)
        try:
            new_cell = compose_mbr(
                design,
                [m.cell for m in members],
                target,
                origin,
                bit_order=bit_order,
            ).new_cell
        except ComposeError as exc:
            result.rejected.append((cand.members, str(exc)))
            continue
        if scan_model is not None:
            scan_model.replace_group(
                list(cand.members), new_cell.name, bit_map=_bit_map(bit_order)
            )
        new_cells.append(new_cell)
        result.composed.append(
            ComposedGroup(
                new_cell=new_cell.name,
                libcell=target.name,
                members=cand.members,
                bits=cand.bits,
                weight=cand.weight,
                incomplete=cand.is_incomplete,
            )
        )
    return new_cells


def _placement_window(design: Design, region: Rect, target) -> Rect:
    """Clip a feasible region so the new cell stays on the die."""
    window = Rect(
        design.die.xlo,
        design.die.ylo,
        max(design.die.xlo, design.die.xhi - target.width),
        max(design.die.ylo, design.die.yhi - target.height),
    )
    clipped = region.intersect(window)
    if clipped is None:
        # Fully constrained region outside the window: take the window point
        # nearest the region (degenerate but safe).
        return Rect.point(window.clamp_point(region.center))
    return clipped
