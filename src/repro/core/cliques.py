"""Clique enumeration (paper Section 3).

Candidate MBRs are cliques of the compatibility subgraph whose total bit
count matches a library width (or, with incomplete MBRs, fits under one).
We enumerate maximal cliques with Bron-Kerbosch (pivoting variant, [14]),
then enumerate valid sub-cliques of each maximal clique with a dynamic
program over achievable bit sums.
"""

from __future__ import annotations

from collections import defaultdict

import networkx as nx


def enumerate_maximal_cliques(graph: nx.Graph) -> list[frozenset[str]]:
    """All maximal cliques via Bron-Kerbosch with pivoting.

    Implemented directly (rather than through networkx) because the paper
    names the algorithm as a component; a cross-check against
    ``nx.find_cliques`` lives in the test suite.
    """
    if graph.number_of_nodes() == 0:
        return []
    adjacency: dict[str, set[str]] = {n: set(graph.neighbors(n)) for n in graph.nodes}
    cliques: list[frozenset[str]] = []

    def bron_kerbosch(r: set[str], p: set[str], x: set[str]) -> None:
        if not p and not x:
            cliques.append(frozenset(r))
            return
        # Pivot on the vertex of P | X with the most neighbours in P
        # (name-ordered tie-break keeps enumeration deterministic across
        # processes regardless of hash seeds).
        pivot = max(sorted(p | x), key=lambda v: len(adjacency[v] & p))
        for v in sorted(p - adjacency[pivot]):
            bron_kerbosch(r | {v}, p & adjacency[v], x & adjacency[v])
            p.remove(v)
            x.add(v)

    bron_kerbosch(set(), set(graph.nodes), set())
    return cliques


def enumerate_subcliques(
    clique: frozenset[str],
    bits_of: dict[str, int],
    target_bit_sums: set[int],
    max_bits: int,
    min_members: int = 2,
    allow_incomplete: bool = False,
    max_subsets_per_total: int = 512,
) -> list[frozenset[str]]:
    """Sub-cliques of a maximal clique whose bit sums are *useful*.

    Every subset of a clique is a clique, so enumeration reduces to subset
    sums over member bit widths.  A dynamic program over achievable sums
    prunes any subset whose running total already exceeds ``max_bits``.  A
    subset qualifies when its total hits a library width exactly
    (``target_bit_sums``), or — with ``allow_incomplete`` — when it merely
    fits under ``max_bits`` and a larger library cell exists to host it
    (Section 3's incomplete MBRs; the caller applies the area-per-bit
    acceptance rule).

    Members are processed in sorted order; each DP state records the chosen
    subset, so emitted-subset count (not clique size) bounds the work.
    ``max_subsets_per_total`` caps the DP fan-out per bit-sum — a safety
    valve against degenerate dense cliques (a 30-clique of 1-bit registers
    has millions of <=8-bit subsets; keeping the lexicographically earliest
    ones preserves the spatially-sorted neighbours that matter).
    """
    members = sorted(clique)
    results: list[frozenset[str]] = []
    larger_exists = {
        total: any(w > total for w in target_bit_sums) for total in range(max_bits + 1)
    }
    # states: mapping bit-sum -> list of subsets achieving it.
    states: dict[int, list[tuple[str, ...]]] = defaultdict(list)
    states[0].append(())
    for name in members:
        width = bits_of[name]
        additions: dict[int, list[tuple[str, ...]]] = defaultdict(list)
        for total, subsets in states.items():
            new_total = total + width
            if new_total > max_bits:
                continue
            room = max_subsets_per_total - len(states.get(new_total, ()))
            if room <= 0:
                continue
            for subset in subsets[:room]:
                additions[new_total].append(subset + (name,))
        for total, subsets in additions.items():
            states[total].extend(subsets[: max_subsets_per_total - len(states[total])])

    for total, subsets in states.items():
        if total == 0:
            continue
        exact = total in target_bit_sums
        incomplete_ok = allow_incomplete and larger_exists[total]
        if not exact and not incomplete_ok:
            continue
        for subset in subsets:
            if len(subset) < min_members:
                continue
            results.append(frozenset(subset))
    return results
