"""MBR decomposition — the paper's future-work extension (Section 5).

"MBR composition in designs that already contain a large number of 8-bit
MBRs, like D4, doesn't provide significant reduction in the clock tree
capacitance ... To optimize such designs, we plan in the future to
consider the decomposition of the initial 8-bit MBRs and their
recomposition using the proposed methodology, instead of skipping them
completely."

:func:`decompose_mbr` splits one MBR into single-bit registers of the same
functional class (preserving data, control, and scan connectivity), and
:func:`decompose_registers` applies it to every maximal-width MBR so the
subsequent composition pass can regroup the bits with full freedom.  The
``decompose_recompose`` benchmark shows the effect on a D4-like design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.point import Point
from repro.library.cells import RegisterCell
from repro.library.functional import ScanStyle
from repro.netlist.change import ChangeRecord
from repro.netlist.db import Cell
from repro.netlist.design import Design
from repro.netlist.registers import RegisterView
from repro.scan.model import ScanModel


class DecomposeError(ValueError):
    """Raised when an MBR cannot be split (no 1-bit cell, constraints)."""


@dataclass
class DecomposeResult:
    """Record of a decomposition pass."""

    decomposed: dict[str, list[str]] = field(default_factory=dict)

    @property
    def cells_removed(self) -> int:
        return len(self.decomposed)

    @property
    def cells_created(self) -> int:
        return sum(len(v) for v in self.decomposed.values())


def _single_bit_cell(design: Design, original: RegisterCell) -> RegisterCell:
    """The 1-bit library cell that can replace one bit of ``original``.

    Drive resistance must not exceed the original's (each bit now drives
    its old load alone, so matching drive is conservative); among
    qualifying cells the smallest area wins.
    """
    styles = (
        (ScanStyle.INTERNAL,) if original.func_class.is_scan else (ScanStyle.NONE,)
    )
    options = [
        c
        for c in design.library.register_cells(original.func_class, 1, scan_styles=styles)
        if c.drive_resistance <= original.drive_resistance + 1e-12
    ]
    if not options:
        raise DecomposeError(
            f"no 1-bit cell of class {original.func_class.name} at drive "
            f"<= {original.drive_resistance}"
        )
    return min(options, key=lambda c: (c.area, c.name))


def decompose_mbr(
    design: Design,
    cell: Cell,
    scan_model: ScanModel | None = None,
) -> ChangeRecord:
    """Split ``cell`` (a multi-bit register) into 1-bit registers.

    The new cells line up row-wise anchored at the MBR's origin, shifted
    left/down as needed so the whole row stays inside the die (the caller
    fine-legalizes); each takes over its bit's D/Q nets and the shared
    control nets.  Internal scan chains expand into external per-bit stitches, and
    ``scan_model`` (when given) has the MBR's chain entry replaced by the
    new cell sequence.  Returns the edit's
    :class:`~repro.netlist.change.ChangeRecord`; ``record.new_cells`` holds
    the new cells in bit order.
    """
    view = RegisterView(cell)
    original = view.libcell
    if original.width_bits < 2:
        raise DecomposeError(f"{cell.name} is already single-bit")
    if cell.dont_touch or cell.fixed:
        raise DecomposeError(f"{cell.name} is designer-excluded")
    target = _single_bit_cell(design, original)

    bits = view.connected_bits()
    clock_net = view.clock_net
    control_nets = view.control_nets()
    si_net = view.scan_in_net() if original.func_class.is_scan else None
    so_net = view.scan_out_net() if original.func_class.is_scan else None

    # A row of 1-bit cells is wider than the MBR it replaces (that is the
    # area an MBR saves), so an MBR flush against the right die edge would
    # spill its bit row past die.xhi: anchor the row at the origin but pull
    # it back on-die when needed.
    die = design.die
    row_width = len(bits) * target.width
    x0 = max(die.xlo, min(cell.origin.x, die.xhi - row_width))
    y0 = max(die.ylo, min(cell.origin.y, die.yhi - target.height))

    with design.track() as tracker:
        new_cells: list[Cell] = []
        for k, bit in enumerate(bits):
            new_cell = design.add_cell(
                design.unique_name(f"{cell.name}_bit"),
                target,
                Point(x0 + k * target.width, y0),
            )
            if clock_net is not None:
                design.connect(new_cell.pin(target.clock_pin_name), clock_net)
            for ctrl, net in control_nets.items():
                if net is not None and target.has_pin(ctrl):
                    design.connect(new_cell.pin(ctrl), net)
            if bit.d_net is not None:
                design.connect(new_cell.pin(target.d_pin(0)), bit.d_net)
            if bit.q_net is not None:
                design.connect(new_cell.pin(target.q_pin(0)), bit.q_net)
            new_cells.append(new_cell)

        if original.func_class.is_scan and new_cells:
            # Expand the internal chain: old SI feeds the first bit, new
            # stitch nets link the middle, old SO leaves from the last bit.
            if si_net is not None:
                design.connect(new_cells[0].pin(target.si_pin()), si_net)
            for a, b in zip(new_cells[:-1], new_cells[1:]):
                stitch = design.add_net(design.unique_name("scan_stitch"))
                design.connect(a.pin(target.so_pin()), stitch)
                design.connect(b.pin(target.si_pin()), stitch)
            if so_net is not None:
                design.connect(new_cells[-1].pin(target.so_pin()), so_net)

        if scan_model is not None:
            scan_model.expand_cell(cell.name, [c.name for c in new_cells])
        design.remove_cell(cell)
    return tracker.record()


def decompose_registers(
    design: Design,
    scan_model: ScanModel | None = None,
    widths: tuple[int, ...] = (8,),
) -> DecomposeResult:
    """Decompose every eligible MBR whose width is in ``widths``.

    Designer-excluded and unsplittable registers are skipped silently —
    decomposition is an enabling transform, not a requirement.
    """
    result = DecomposeResult()
    for cell in list(design.registers()):
        if cell.width_bits not in widths:
            continue
        try:
            record = decompose_mbr(design, cell, scan_model)
        except DecomposeError:
            continue
        result.decomposed[cell.name] = [c.name for c in record.new_cells]
    return result
