"""Pure, picklable per-subgraph ILP subproblems.

The paper's scalability argument (Section 3) is that clock-pin-driven
partitioning turns composition into many independent subproblems of at
most ~30 registers.  This module is the seam that makes that independence
executable: the composer's solve stage serializes each subgraph into a
:class:`SubproblemSpec` (node names, candidate subsets, weights — no
design, no netlist, nothing unpicklable), solves every spec with the pure
function :func:`solve_subproblem`, and maps the chosen candidate indices
back.  Because the function is pure and the spec self-contained,
:func:`solve_subproblems` can fan the specs out across a
``concurrent.futures.ProcessPoolExecutor`` — and the parallel path is
bit-identical to the serial one, since both run exactly the same solver
on exactly the same inputs in exactly the same order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.ilp.setpart import (
    SetPartitionProblem,
    SetPartitionSolution,
    WarmStart,
    solve_set_partition,
)


@dataclass(frozen=True)
class SubproblemSpec:
    """One subgraph's weighted set-partitioning instance, detached from the
    design.

    ``nodes`` are the subgraph's register names in sorted order;
    ``subsets[i]`` holds candidate *i*'s member positions within ``nodes``.
    The spec must stay picklable — it is what crosses the process boundary.
    """

    index: int
    nodes: tuple[str, ...]
    subsets: tuple[tuple[int, ...], ...]
    weights: tuple[float, ...]
    solver: str = "exact"
    warm_bound: float = float("inf")
    """Objective of a known-feasible solution of *this* instance (typically a
    prior solve of the same subgraph re-weighed against the current
    candidates).  ``inf`` means no warm start; a finite value seeds the
    exact solver's pruning cutoff (bound-only — see
    :class:`repro.ilp.setpart.WarmStart`)."""

    def to_problem(self) -> SetPartitionProblem:
        return SetPartitionProblem(
            n_elements=len(self.nodes),
            subsets=tuple(frozenset(s) for s in self.subsets),
            weights=self.weights,
        )


@dataclass(frozen=True)
class SubproblemResult:
    """The solve stage's pure output: which candidates to keep.

    ``chosen`` indexes into the candidate list the spec was built from;
    ``nodes_explored`` counts branch-and-bound nodes (0 for the HiGHS
    backend, matching the historical accounting).
    """

    index: int
    chosen: tuple[int, ...]
    objective: float
    nodes_explored: int
    optimal: bool


def make_spec(
    index: int,
    node_names: Sequence[str],
    candidates: Sequence[object],
    solver: str = "exact",
    warm_bound: float = float("inf"),
) -> SubproblemSpec:
    """Detach one subgraph + its :class:`~repro.core.candidates.CandidateMBR`
    list into a picklable spec (candidate order is preserved, so result
    indices map straight back)."""
    names = tuple(sorted(node_names))
    position = {n: i for i, n in enumerate(names)}
    return SubproblemSpec(
        index=index,
        nodes=names,
        subsets=tuple(
            tuple(sorted(position[m] for m in c.members)) for c in candidates
        ),
        weights=tuple(c.weight for c in candidates),
        solver=solver,
        warm_bound=warm_bound,
    )


def _solve_scipy(problem: SetPartitionProblem) -> SetPartitionSolution:
    from repro.ilp.scipy_backend import scipy_available, solve_set_partition_scipy

    if not scipy_available():
        raise RuntimeError(
            "solver='scipy' requires SciPy; install it or use solver='exact'"
        )
    return solve_set_partition_scipy(problem)


def solve_subproblem(spec: SubproblemSpec) -> SubproblemResult:
    """Solve one spec. Pure: no design access, no shared state.

    ``solver='exact'`` runs the branch-and-bound; if the node budget runs
    out on a pathologically dense instance *and* SciPy is installed, HiGHS
    finishes the job and the better solution wins.  On a NumPy-only
    install the incumbent is used as-is, so the exact path has no hard
    SciPy dependency.
    """
    problem = spec.to_problem()
    with obs.span(
        "ilp.solve",
        cat="ilp",
        subproblem=spec.index,
        elements=len(spec.nodes),
        candidates=len(spec.subsets),
        solver=spec.solver,
    ) as sp:
        if spec.solver == "scipy":
            sol = _solve_scipy(problem)
            nodes = 0
        elif spec.solver == "exact":
            warm = WarmStart(spec.warm_bound)
            sol = solve_set_partition(problem, warm=warm if warm.usable else None)
            nodes = sol.nodes_explored
            if not sol.optimal:
                from repro.ilp.scipy_backend import scipy_available

                obs.log(
                    "ilp.budget_exhausted",
                    subproblem=spec.index,
                    nodes=sol.nodes_explored,
                )
                if scipy_available():
                    alt = _solve_scipy(problem)
                    if alt.feasible and alt.objective < sol.objective - 1e-9:
                        sol = alt
        else:
            raise ValueError(f"unknown solver {spec.solver!r}")
        if not sol.feasible:  # pragma: no cover - singletons guarantee feasibility
            raise RuntimeError(
                "composition ILP infeasible despite singleton candidates"
            )
        sp.set(nodes=nodes, chosen=len(sol.chosen))
    return SubproblemResult(
        index=spec.index,
        chosen=tuple(sol.chosen),
        objective=sol.objective,
        nodes_explored=nodes,
        optimal=sol.optimal,
    )


def _solve_captured(
    payload: tuple[SubproblemSpec, float, bool],
) -> tuple[SubproblemResult, list, dict]:
    """Worker-side entry: solve one spec under a fresh tracer/registry.

    Returns ``(result, span records, metrics snapshot)`` so the parent can
    merge the worker's observability signal back in.  The worker tracer
    shares the parent's ``perf_counter`` epoch — on Linux that clock is
    the system-wide ``CLOCK_MONOTONIC``, so worker spans land at the right
    wall position on the merged timeline.
    """
    spec, epoch, traced = payload
    tracer = obs.Tracer(enabled=traced, epoch=epoch)
    registry = obs.MetricsRegistry()
    prev_tracer = obs.set_tracer(tracer)
    prev_registry = obs.set_registry(registry)
    try:
        result = solve_subproblem(spec)
    finally:
        obs.set_tracer(prev_tracer)
        obs.set_registry(prev_registry)
    return result, tracer.records(), registry.snapshot()


def solve_subproblems(
    specs: Sequence[SubproblemSpec], workers: int = 1
) -> list[SubproblemResult]:
    """Solve every spec, in spec order.

    ``workers <= 1`` solves in-process (no pool, no pickling — the
    historical serial path).  ``workers > 1`` fans out over a process
    pool; ``map`` preserves input order, and each result is a pure
    function of its spec, so the two paths return identical lists.  The
    pooled path captures each worker's spans and metrics alongside its
    result: spans are adopted into the parent tracer (re-parented under
    the caller's current span, keyed by remapped span ids) and metric
    snapshots merge into the parent registry, so ILP effort counters are
    identical whichever path ran.
    """
    hb = obs.get_heartbeat()
    if workers <= 1 or len(specs) <= 1:
        results = []
        for i, s in enumerate(specs):
            results.append(solve_subproblem(s))
            if hb is not None:
                hb.advance(i + 1, len(specs), unit="subproblems")
        return results
    n_workers = min(workers, len(specs))
    chunksize = max(1, len(specs) // (n_workers * 4))
    tracer = obs.get_tracer()
    traced = tracer is not None and tracer.enabled
    epoch = tracer.epoch if traced else 0.0
    payloads = [(s, epoch, traced) for s in specs]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        captured = list(pool.map(_solve_captured, payloads, chunksize=chunksize))
    registry = obs.get_registry()
    profiler = obs.get_profiler()
    # Worker spans become profiler samples under the fan-out site's own
    # stack, so the flamegraph shows parallel ILP time where it belongs.
    profile_prefix = (
        tracer.current_stack_names() if profiler is not None and traced else ()
    )
    results: list[SubproblemResult] = []
    for i, (result, records, snapshot) in enumerate(captured):
        if traced and tracer is not None:
            tracer.adopt(records)
            if profiler is not None:
                profiler.ingest_spans(records, prefix=profile_prefix)
        registry.merge(snapshot)
        results.append(result)
        if hb is not None:
            hb.advance(i + 1, len(captured), unit="subproblems")
    return results
