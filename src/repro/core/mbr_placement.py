"""MBR placement: wire-length-optimal location for a new MBR (Section 4.2).

For each D/Q pin of the new cell we form the bounding box of the pins it
will connect to (the old register's own pin excluded), reference the new
pin's coordinates as the cell corner plus a fixed in-cell offset, and
minimize the summed half-perimeter wire length

    wl_i = (max(xh, x+dx_i) - min(xl, x+dx_i))
         + (max(yh, y+dy_i) - min(yl, y+dy_i))

subject to (x, y) lying in the group's common timing-feasible region.  The
paper solves this as an LP with helper variables replacing max/min; we
implement exactly that LP on our simplex, plus a direct piecewise-linear
minimizer (x and y decouple; each axis objective is convex PWL) used as the
fast path and as an independent cross-check of the LP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.ilp.simplex import solve_lp
from repro.library.cells import RegisterCell
from repro.netlist.registers import RegisterBit


@dataclass(frozen=True, slots=True)
class PinConnection:
    """One new-cell pin: its in-cell offset and the box of its peers."""

    dx: float
    dy: float
    box: Rect


def pin_connections(
    target: RegisterCell,
    bit_order: list[RegisterBit],
) -> list[PinConnection]:
    """Build the per-pin connection boxes for a candidate composition.

    ``bit_order[k]`` is the old register bit that the new cell's bit ``k``
    will take over; its D/Q nets (minus the old pin itself) define the
    boxes.  Bits and nets without remaining terminals are skipped.
    """
    conns: list[PinConnection] = []
    for new_index, old_bit in enumerate(bit_order):
        for old_pin, new_pin_name in (
            (old_bit.d_pin, target.d_pin(new_index)),
            (old_bit.q_pin, target.q_pin(new_index)),
        ):
            if old_pin.net is None:
                continue
            box = old_pin.net.bbox(exclude=old_pin)
            if box is None:
                continue
            desc = target.pin(new_pin_name)
            conns.append(PinConnection(desc.dx, desc.dy, box))
    return conns


def wirelength_at(origin: Point, conns: list[PinConnection]) -> float:
    """Total HPWL of the connections with the cell at ``origin``."""
    total = 0.0
    for c in conns:
        px, py = origin.x + c.dx, origin.y + c.dy
        total += max(c.box.xhi, px) - min(c.box.xlo, px)
        total += max(c.box.yhi, py) - min(c.box.ylo, py)
    return total


# ---------------------------------------------------------------------------
# Exact axis-decoupled piecewise-linear minimization
# ---------------------------------------------------------------------------


def _axis_minimum(
    lo: float,
    hi: float,
    spans: list[tuple[float, float]],
) -> float:
    """Minimize sum of ``max(h, t) - min(l, t)`` over t in [lo, hi].

    Each term is convex piecewise-linear in t with breakpoints at l and h;
    so is the sum.  The minimum over the interval is attained at a clamped
    breakpoint or an interval end — evaluate and pick.
    """

    def value(t: float) -> float:
        return sum(max(h, t) - min(l, t) for l, h in spans)

    candidates = {lo, hi}
    for l, h in spans:
        candidates.add(min(max(l, lo), hi))
        candidates.add(min(max(h, lo), hi))
    return min(candidates, key=lambda t: (value(t), t))


def place_mbr_pwl(region: Rect, conns: list[PinConnection]) -> Point:
    """The exact optimum via per-axis PWL minimization."""
    if not conns:
        return region.center
    x = _axis_minimum(
        region.xlo, region.xhi, [(c.box.xlo - c.dx, c.box.xhi - c.dx) for c in conns]
    )
    y = _axis_minimum(
        region.ylo, region.yhi, [(c.box.ylo - c.dy, c.box.yhi - c.dy) for c in conns]
    )
    return Point(x, y)


# ---------------------------------------------------------------------------
# The paper's LP formulation
# ---------------------------------------------------------------------------


def place_mbr_lp(region: Rect, conns: list[PinConnection]) -> Point:
    """Solve the Section 4.2 LP with helper variables on our simplex.

    Variables: x, y, then per connection i the helpers
    (ax_i >= max terms, bx_i <= min terms, ay_i, by_i); the objective sums
    ax_i - bx_i + ay_i - by_i.
    """
    if not conns:
        return region.center
    k = len(conns)
    n = 2 + 4 * k  # x, y, then [ax, bx, ay, by] per connection

    def ax(i: int) -> int:
        return 2 + 4 * i

    def bx(i: int) -> int:
        return 2 + 4 * i + 1

    def ay(i: int) -> int:
        return 2 + 4 * i + 2

    def by(i: int) -> int:
        return 2 + 4 * i + 3

    c = [0.0] * n
    for i in range(k):
        c[ax(i)] = 1.0
        c[bx(i)] = -1.0
        c[ay(i)] = 1.0
        c[by(i)] = -1.0

    A_ub: list[list[float]] = []
    b_ub: list[float] = []

    def add_row(entries: dict[int, float], rhs: float) -> None:
        r = [0.0] * n
        for idx, v in entries.items():
            r[idx] = v
        A_ub.append(r)
        b_ub.append(rhs)

    X, Y = 0, 1
    for i, conn in enumerate(conns):
        # ax_i >= x + dx   <=>  x - ax_i <= -dx
        add_row({X: 1.0, ax(i): -1.0}, -conn.dx)
        # ax_i >= xh       <=>  -ax_i <= -xh
        add_row({ax(i): -1.0}, -conn.box.xhi)
        # bx_i <= x + dx   <=>  bx_i - x <= dx
        add_row({bx(i): 1.0, X: -1.0}, conn.dx)
        # bx_i <= xl
        add_row({bx(i): 1.0}, conn.box.xlo)
        # Same structure on the y axis.
        add_row({Y: 1.0, ay(i): -1.0}, -conn.dy)
        add_row({ay(i): -1.0}, -conn.box.yhi)
        add_row({by(i): 1.0, Y: -1.0}, conn.dy)
        add_row({by(i): 1.0}, conn.box.ylo)

    bounds: list[tuple[float | None, float | None]] = [
        (region.xlo, region.xhi),
        (region.ylo, region.yhi),
    ] + [(None, None)] * (4 * k)

    res = solve_lp(c, A_ub=A_ub, b_ub=b_ub, bounds=bounds)
    if not res.ok:  # pragma: no cover - the LP is feasible by construction
        raise RuntimeError(f"MBR placement LP failed: {res.status}")
    return Point(float(res.x[0]), float(res.x[1]))


def place_mbr(
    region: Rect,
    target: RegisterCell,
    bit_order: list[RegisterBit],
    method: str = "pwl",
) -> Point:
    """Optimal origin for the new MBR inside its feasible region.

    ``method="pwl"`` (default) uses the exact decoupled minimizer;
    ``method="lp"`` solves the paper's LP.  Both return the same optimum
    (property-tested); the PWL path is the fast default.
    """
    conns = pin_connections(target, bit_order)
    if method == "pwl":
        return place_mbr_pwl(region, conns)
    if method == "lp":
        return place_mbr_lp(region, conns)
    raise ValueError(f"unknown placement method {method!r}")
