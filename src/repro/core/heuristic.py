"""The heuristic baseline of Fig. 6: agglomerative pairwise merging.

Section 5 compares the ILP against "a heuristic-algorithm-based approach,
similar to that performed in [8] and [12]".  Those mergers work bottom-up:
repeatedly merge two compatible registers whose combined width exists in
the library (1+1 -> 2, 2+2 -> 4, ... ), nearest pairs first, until no merge
applies.  The baseline shares this reproduction's entire analysis stack —
compatibility predicates, mapping, wire-length-optimal placement,
legalization, scan tracking — and differs *only* in allocation:

* local pairwise agglomeration instead of the global set-partitioning ILP;
* no placement-aware weights (pairs merge blindly with respect to
  intervening registers);
* no incomplete MBRs and no odd-width packing (a 5-bit group cannot become
  4+1 in one step the way the ILP's clique candidates can).

The fragmentation this causes — stranded odd registers at each level — is
precisely the ~12% register-count gap Fig. 6 attributes to the ILP.
"""

from __future__ import annotations

import time

from repro.core.compatibility import analyze_registers
from repro.core.composer import (
    ComposedGroup,
    ComposerConfig,
    CompositionResult,
    _bit_map,
    _bit_order,
    _placement_window,
)
from repro.core.graph import build_compatibility_graph
from repro.core.mapping import select_library_cell
from repro.library.functional import ScanStyle
from repro.core.mbr_placement import place_mbr
from repro.netlist.design import Design
from repro.netlist.edit import ComposeError, compose_mbr
from repro.placement.legalize import PlacementRows, legalize
from repro.scan.model import ScanModel
from repro.sta.timer import Timer


def _match_pairs(graph) -> list[tuple[str, str]]:
    """Greedy nearest-first matching over compatibility edges."""
    edges = []
    for u, v in graph.edges:
        cu = graph.nodes[u]["info"].center
        cv = graph.nodes[v]["info"].center
        edges.append((cu.manhattan_to(cv), min(u, v), max(u, v)))
    edges.sort()
    matched: set[str] = set()
    pairs: list[tuple[str, str]] = []
    for _, u, v in edges:
        if u in matched or v in matched:
            continue
        matched.add(u)
        matched.add(v)
        pairs.append((u, v))
    return pairs


def compose_design_heuristic(
    design: Design,
    timer: Timer,
    scan_model: ScanModel | None = None,
    config: ComposerConfig | None = None,
    max_rounds: int = 8,
) -> CompositionResult:
    """Run the agglomerative baseline (same signature as
    :func:`repro.core.composer.compose_design`).

    Each round re-analyzes compatibility (merged registers have new
    positions and slacks), matches nearest compatible pairs whose width sum
    is an available library width, and applies the merges.  Rounds repeat
    until a fixed point (at most ``max_rounds``).
    """
    config = config or ComposerConfig()
    t0 = time.perf_counter()
    result = CompositionResult(registers_before=design.total_register_count())
    new_cells = []

    for round_index in range(max_rounds):
        infos = analyze_registers(design, timer, scan_model, config.compatibility)
        if round_index == 0:
            result.composable_registers = sum(1 for i in infos.values() if i.composable)
        graph = build_compatibility_graph(infos, scan_model, config.compatibility)
        result.subgraphs = max(result.subgraphs, 1)

        merges = 0
        for u, v in _match_pairs(graph):
            a, b = infos[u], infos[v]
            width = a.bits + b.bits
            if width not in design.library.widths_for(a.func_class):
                continue
            common = a.region.intersect(b.region)
            if common is None:
                continue
            choice = select_library_cell(design.library, [a, b], width, scan_model)
            if choice is None:
                continue
            if choice.cell.scan_style is ScanStyle.MULTI:
                # Same mapping policy as the ILP flow (Section 4.1):
                # external-scan cells only when unavoidable — a pairwise
                # merger simply skips such pairs.
                continue
            result.candidates_considered += 1
            bit_order = _bit_order([a, b], scan_model)
            window = _placement_window(design, common.rect, choice.cell)
            origin = place_mbr(window, choice.cell, bit_order, config.placement_method)
            try:
                new_cell = compose_mbr(
                    design, [a.cell, b.cell], choice.cell, origin, bit_order=bit_order
                )
            except ComposeError as exc:
                result.rejected.append(((u, v), str(exc)))
                continue
            if scan_model is not None:
                scan_model.replace_group([u, v], new_cell.name, bit_map=_bit_map(bit_order))
            new_cells.append(new_cell)
            result.composed.append(
                ComposedGroup(
                    new_cell=new_cell.name,
                    libcell=choice.cell.name,
                    members=(u, v),
                    bits=width,
                    weight=0.0,
                    incomplete=False,
                )
            )
            merges += 1
        timer.dirty()
        if merges == 0:
            break

    if scan_model is not None:
        scan_model.reorder_chains(design)
        scan_model.restitch(design)
    if config.run_legalize and new_cells:
        rows = PlacementRows(
            design.die,
            design.library.technology.row_height,
            design.library.technology.site_width,
        )
        live = [c for c in new_cells if c.name in design.cells]
        result.legalization = legalize(
            design, rows, movable=live, max_displacement=config.legalize_max_displacement
        )

    timer.dirty()
    result.registers_after = design.total_register_count()
    result.runtime_seconds = time.perf_counter() - t0
    return result
