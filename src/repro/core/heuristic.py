"""The heuristic baseline of Fig. 6: agglomerative pairwise merging.

Section 5 compares the ILP against "a heuristic-algorithm-based approach,
similar to that performed in [8] and [12]".  Those mergers work bottom-up:
repeatedly merge two compatible registers whose combined width exists in
the library (1+1 -> 2, 2+2 -> 4, ... ), nearest pairs first, until no merge
applies.  The baseline shares this reproduction's entire analysis stack —
compatibility predicates, mapping, wire-length-optimal placement,
legalization, scan tracking — and runs the *same stage pipeline* as the
ILP engine (analyze → graph → solve → apply, then scan → legalize); it
differs *only* in the solve stage:

* local pairwise agglomeration instead of the global set-partitioning ILP;
* no placement-aware weights (pairs merge blindly with respect to
  intervening registers);
* no incomplete MBRs and no odd-width packing (a 5-bit group cannot become
  4+1 in one step the way the ILP's clique candidates can).

The fragmentation this causes — stranded odd registers at each level — is
precisely the ~12% register-count gap Fig. 6 attributes to the ILP.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.composer import (
    FINALIZE_PIPELINE,
    ComposedGroup,
    ComposerConfig,
    ComposeState,
    CompositionResult,
    _bit_map,
    _bit_order,
    _placement_window,
    _stage_analyze,
    _stage_graph,
)
from repro.core.mapping import MappingChoice, select_library_cell
from repro.core.mbr_placement import place_mbr
from repro.engine import Pipeline, StageTrace, stage
from repro.geometry.region import FeasibleRegion
from repro.library.functional import ScanStyle
from repro.netlist.design import Design
from repro.netlist.edit import ComposeError, compose_mbr
from repro.scan.model import ScanModel
from repro.sta.timer import Timer


@dataclass(frozen=True)
class _PlannedMerge:
    """One pair the greedy matcher decided to merge this round."""

    u: str
    v: str
    width: int
    choice: MappingChoice
    region: FeasibleRegion


@dataclass
class HeuristicState(ComposeState):
    """The heuristic's pipeline context: ComposeState plus planned pairs."""

    planned: list[_PlannedMerge] = field(default_factory=list)


def _match_pairs(graph) -> list[tuple[str, str]]:
    """Greedy nearest-first matching over compatibility edges."""
    edges = []
    for u, v in graph.edges:
        cu = graph.nodes[u]["info"].center
        cv = graph.nodes[v]["info"].center
        edges.append((cu.manhattan_to(cv), min(u, v), max(u, v)))
    edges.sort()
    matched: set[str] = set()
    pairs: list[tuple[str, str]] = []
    for _, u, v in edges:
        if u in matched or v in matched:
            continue
        matched.add(u)
        matched.add(v)
        pairs.append((u, v))
    return pairs


@stage("solve")
def _stage_match(state: HeuristicState):
    """The baseline's allocation: greedy nearest-pair matching (no ILP)."""
    state.result.subgraphs = max(state.result.subgraphs, 1)
    design, infos = state.design, state.infos
    planned: list[_PlannedMerge] = []
    for u, v in _match_pairs(state.graph):
        a, b = infos[u], infos[v]
        width = a.bits + b.bits
        if width not in design.library.widths_for(a.func_class):
            continue
        common = a.region.intersect(b.region)
        if common is None:
            continue
        choice = select_library_cell(design.library, [a, b], width, state.scan_model)
        if choice is None:
            continue
        if choice.cell.scan_style is ScanStyle.MULTI:
            # Same mapping policy as the ILP flow (Section 4.1):
            # external-scan cells only when unavoidable — a pairwise
            # merger simply skips such pairs.
            continue
        state.result.candidates_considered += 1
        planned.append(_PlannedMerge(u, v, width, choice, common))
    state.planned = planned
    return {"pairs": len(planned)}


@stage("apply")
def _stage_merge(state: HeuristicState):
    """Place and commit every planned pair merge (mutates the design)."""
    design, infos, scan_model = state.design, state.infos, state.scan_model
    merged = []
    with design.track() as tracker:
        for plan in state.planned:
            a, b = infos[plan.u], infos[plan.v]
            bit_order = _bit_order([a, b], scan_model)
            window = _placement_window(design, plan.region.rect, plan.choice.cell)
            origin = place_mbr(
                window, plan.choice.cell, bit_order, state.config.placement_method
            )
            try:
                new_cell = compose_mbr(
                    design,
                    [a.cell, b.cell],
                    plan.choice.cell,
                    origin,
                    bit_order=bit_order,
                ).new_cell
            except ComposeError as exc:
                state.result.rejected.append(((plan.u, plan.v), str(exc)))
                continue
            if scan_model is not None:
                scan_model.replace_group(
                    [plan.u, plan.v], new_cell.name, bit_map=_bit_map(bit_order)
                )
            merged.append(new_cell)
            state.result.composed.append(
                ComposedGroup(
                    new_cell=new_cell.name,
                    libcell=plan.choice.cell.name,
                    members=(plan.u, plan.v),
                    bits=plan.width,
                    weight=0.0,
                    incomplete=False,
                )
            )
    state.new_cells.extend(merged)
    state.pass_cells = merged
    state.timer.apply_change(tracker.record())
    return {"composed": len(merged)}


ROUND_PIPELINE: Pipeline[HeuristicState] = Pipeline(
    (_stage_analyze, _stage_graph, _stage_match, _stage_merge)
)


def compose_design_heuristic(
    design: Design,
    timer: Timer,
    scan_model: ScanModel | None = None,
    config: ComposerConfig | None = None,
    max_rounds: int = 8,
) -> CompositionResult:
    """Run the agglomerative baseline (same signature as
    :func:`repro.core.composer.compose_design`).

    Each round re-analyzes compatibility (merged registers have new
    positions and slacks), matches nearest compatible pairs whose width sum
    is an available library width, and applies the merges.  Rounds repeat
    until a fixed point (at most ``max_rounds``).
    """
    config = config or ComposerConfig()
    t0 = time.perf_counter()
    result = CompositionResult(registers_before=design.total_register_count())
    trace = StageTrace()
    state = HeuristicState(design, timer, scan_model, config=config, result=result)

    for round_index in range(max_rounds):
        state.pass_index = round_index
        ROUND_PIPELINE.run(state, trace)
        if not state.pass_cells:
            break

    FINALIZE_PIPELINE.run(state, trace)

    result.registers_after = design.total_register_count()
    result.runtime_seconds = time.perf_counter() - t0
    result.trace = trace
    return result
