"""The paper's contribution: placement-aware ILP-based MBR composition.

Pipeline (paper Sections 2-4):

1. :mod:`repro.core.compatibility` — per-register analysis and the
   functional / scan / placement / timing compatibility predicates;
2. :mod:`repro.core.graph` — the compatibility graph;
3. :mod:`repro.core.partition` — connected components + clock-position-
   driven K-partitioning into subgraphs of at most 30 nodes;
4. :mod:`repro.core.cliques` — Bron-Kerbosch maximal cliques and the
   dynamic-programming sub-clique enumeration against library widths;
5. :mod:`repro.core.candidates` — candidate MBRs, incomplete-MBR
   acceptance, and feasibility screening;
6. :mod:`repro.core.weights` — the convex-hull blocking test and the
   placement-aware weight w_i;
7. :mod:`repro.core.subproblem` — pure, picklable per-subgraph ILP
   specs/results, solved serially or across a process pool;
8. :mod:`repro.core.composer` — the stage pipeline (analyze → graph →
   partition → enumerate → solve → apply → scan → legalize) and solution
   application;
9. :mod:`repro.core.mapping` — library cell selection (drive resistance,
   clock-pin cap, scan style);
10. :mod:`repro.core.mbr_placement` — the wire-length LP placing each MBR;
11. :mod:`repro.core.heuristic` — the greedy pairwise baseline of Fig. 6
    (same stage pipeline, different solve stage).
"""

from repro.core.compatibility import (
    CompatibilityConfig,
    RegisterInfo,
    analyze_registers,
    functionally_compatible,
    placement_compatible,
    scan_compatible,
    timing_compatible,
)
from repro.core.graph import build_compatibility_graph
from repro.core.partition import partition_graph
from repro.core.cliques import enumerate_maximal_cliques, enumerate_subcliques
from repro.core.candidates import CandidateMBR, enumerate_candidates
from repro.core.weights import blocking_registers, candidate_weight
from repro.core.composer import (
    ComposerConfig,
    ComposeState,
    CompositionResult,
    compose_design,
)
from repro.core.heuristic import compose_design_heuristic
from repro.core.subproblem import (
    SubproblemResult,
    SubproblemSpec,
    solve_subproblem,
    solve_subproblems,
)
from repro.core.mapping import select_library_cell
from repro.core.mbr_placement import place_mbr

__all__ = [
    "CompatibilityConfig",
    "RegisterInfo",
    "analyze_registers",
    "functionally_compatible",
    "placement_compatible",
    "scan_compatible",
    "timing_compatible",
    "build_compatibility_graph",
    "partition_graph",
    "enumerate_maximal_cliques",
    "enumerate_subcliques",
    "CandidateMBR",
    "enumerate_candidates",
    "blocking_registers",
    "candidate_weight",
    "ComposerConfig",
    "ComposeState",
    "CompositionResult",
    "compose_design",
    "compose_design_heuristic",
    "SubproblemResult",
    "SubproblemSpec",
    "solve_subproblem",
    "solve_subproblems",
    "select_library_cell",
    "place_mbr",
]
