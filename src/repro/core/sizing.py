"""MBR sizing after composition and useful skew (paper Fig. 4).

Mapping (Section 4.1) deliberately picks the minimum drive resistance of the
replaced registers, which can leave new MBRs overdriven once useful skew has
improved their worst slack.  Sizing walks the composed MBRs and downsizes
each to the weakest drive that still leaves a safety margin of positive
slack — "both MBR area and clock pin capacitance are further reduced"
(Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.db import Cell
from repro.netlist.design import Design
from repro.sta.timer import Timer


@dataclass
class SizingResult:
    """Record of one sizing pass."""

    swapped: dict[str, tuple[str, str]] = field(default_factory=dict)
    area_delta: float = 0.0
    clock_cap_delta: float = 0.0

    @property
    def num_swapped(self) -> int:
        return len(self.swapped)


def size_registers(
    design: Design,
    timer: Timer,
    cells: list[Cell] | None = None,
    margin: float = 0.0,
) -> SizingResult:
    """Downsize registers whose Q-side slack affords it.

    For each register (default: all registers), consider weaker-drive cells
    of the same class/width/scan style.  The launch-delay increase of a swap
    is ``(R_new - R_old) * load``; the swap is taken when the register's
    Q slack minus that increase stays above ``margin``.  Candidates are
    tried weakest-first, so each register lands on the weakest safe drive.

    All decisions read one timing state and commit as a batch (one change
    record handed to the timer at the end): this is safe for setup because
    a swap only slows the swapped register's own launch segment, and every
    affected path is individually required to retain ``margin`` — the
    arrival at a shared endpoint is the max over independently-slowed
    paths, each of which passed its own check.
    """
    result = SizingResult()
    targets = cells if cells is not None else design.registers()
    swaps: list[tuple] = []
    for cell in sorted(targets, key=lambda c: c.name):
        if not cell.is_register or cell.dont_touch or cell.fixed:
            continue
        current = cell.register_cell
        options = [
            c
            for c in design.library.register_cells(
                current.func_class, current.width_bits, scan_styles=(current.scan_style,)
            )
            if c.drive_resistance > current.drive_resistance
        ]
        if not options:
            continue
        options.sort(key=lambda c: -c.drive_resistance)  # weakest first

        rs = timer.register_slack(cell)
        load = max(
            (
                timer.graph.output_load(cell.pin(current.q_pin(b)))
                for b in range(current.width_bits)
                if cell.pin(current.q_pin(b)).net is not None
            ),
            default=0.0,
        )
        for option in options:
            extra_delay = (option.drive_resistance - current.drive_resistance) * load
            if rs.q_slack - extra_delay > margin:
                swaps.append((cell, current, option))
                break

    with design.track() as tracker:
        for cell, current, option in swaps:
            result.area_delta += option.area - current.area
            result.clock_cap_delta += option.clock_pin_cap - current.clock_pin_cap
            design.swap_libcell(cell, option)
            result.swapped[cell.name] = (current.name, option.name)
    if swaps:
        timer.apply_change(tracker.record())
    return result
