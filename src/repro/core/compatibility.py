"""Register compatibility analysis (paper Section 2).

A group of registers may merge into an MBR only when they are compatible in
four independent senses:

* **functionally** — same functional class, same clock net (including any
  gating), control pins driven by the same nets, not excluded by the
  designer, and a larger cell of the class exists in the library;
* **scan** — same scan partition; ordered scan sections impose ordering
  constraints resolved at clique/mapping time;
* **placement** — their timing-feasible regions overlap;
* **timing** — similar D slacks and similar Q slacks, with no opposing
  useful-skew pressure (no positive-D/negative-Q register merged with a
  negative-D/positive-Q one).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geometry.point import Point
from repro.geometry.rect import Rect, intersect_all
from repro.geometry.region import FeasibleRegion, SlackToDistance
from repro.library.cells import RegisterCell
from repro.library.functional import FunctionalClass
from repro.netlist.db import Cell
from repro.netlist.design import Design
from repro.netlist.registers import RegisterView
from repro.scan.model import ScanModel
from repro.sta.timer import Timer


@dataclass(frozen=True, slots=True)
class CompatibilityConfig:
    """Tunables of the compatibility analysis.

    ``slack_similarity``
        Maximum difference between two registers' D slacks (and separately Q
        slacks) for timing compatibility — "the magnitude of the observed
        slacks is similar" (Section 2).  Expressed in ns.
    ``max_region_distance``
        Cap on the slack-derived move distance, so huge-slack registers do
        not become compatible with the entire die; this also bounds the
        compatibility graph's degree.
    ``clip_similarity_at``
        Slacks above this value are treated as "comfortably positive" and
        compared as equal — two registers with 1 ns and 2 ns of margin are
        both simply uncritical.
    ``min_region_margin``
        Guard band (um) added around every pin's feasible region.  A
        violating pin's region is its net bounding box, which can degenerate
        to a point; physically, an in-place merge that moves the pin by a
        cell width is noise.  The margin makes abutting registers placement
        compatible while the TNS/failing-endpoint QoR checks remain the
        authoritative guard against real degradation.
    """

    slack_similarity: float = 0.15
    max_region_distance: float = 30.0
    clip_similarity_at: float = 0.5
    min_region_margin: float = 2.5


@dataclass
class RegisterInfo:
    """Everything the composition engine needs to know about one register."""

    cell: Cell
    func_class: FunctionalClass
    bits: int
    composable: bool
    reason: str  # why not composable, "" when composable
    d_slack: float = math.inf
    q_slack: float = math.inf
    region: FeasibleRegion = field(
        default_factory=lambda: FeasibleRegion(Rect(0, 0, 0, 0), pinned=True)
    )
    clock_net: str | None = None
    control_key: tuple[tuple[str, str | None], ...] = ()
    center_xy: tuple[float, float] = (0.0, 0.0)  # cached cell center
    field_index: int | None = None  # position in the RegisterField arrays

    @property
    def name(self) -> str:
        return self.cell.name

    @property
    def center(self) -> Point:
        return Point(*self.center_xy)


# ---------------------------------------------------------------------------
# Per-register analysis
# ---------------------------------------------------------------------------


def _control_key(view: RegisterView) -> tuple[tuple[str, str | None], ...]:
    """Canonical (pin, net-name) tuple: functional compatibility requires
    the same nets on the same control pins."""
    nets = view.control_nets()
    return tuple(sorted((pin, net.name if net else None) for pin, net in nets.items()))


def feasible_region(
    design: Design,
    cell: Cell,
    timer: Timer,
    config: CompatibilityConfig,
) -> FeasibleRegion:
    """The timing-feasible placement region of a register's *origin*.

    Each connected D/Q pin constrains the cell: positive slack lets the pin
    move up to the slack-equivalent Manhattan distance from its current
    location (diamond, approximated by its bounding rectangle); a violating
    pin restricts the cell to the bounding box of its net (where moving does
    not lengthen the net).  All pin constraints are translated to origin
    coordinates and intersected, then clipped to the die.  If the
    intersection is empty the cell is pinned to its footprint — it cannot
    move, but other registers may still move next to it (Section 2).
    """
    if cell.fixed:
        return FeasibleRegion(Rect.point(cell.origin), pinned=True)
    lc = cell.register_cell
    conv = SlackToDistance(
        delay_per_micron=timer.tech.wire_delay_per_um,
        max_distance=config.max_region_distance,
    )

    constraints: list[Rect] = []
    for bit in range(lc.width_bits):
        for pin_name in (lc.d_pin(bit), lc.q_pin(bit)):
            pin = cell.pins.get(pin_name)
            if pin is None or pin.net is None:
                continue
            s = timer.slack_at(pin)
            if s is None:
                continue
            offset = Point(pin.desc.dx, pin.desc.dy)
            if s > 0.0:
                dist = conv.distance(s)
                pin_region = Rect.from_center(pin.location, 2 * dist, 2 * dist)
            else:
                # Violating pin: the pin may move within the net's bounding
                # box (the net does not lengthen there), nowhere else.
                box = pin.net.bbox()
                pin_region = box if box is not None else Rect.point(pin.location)
            pin_region = pin_region.expanded(config.min_region_margin)
            # Translate: the cell origin must satisfy origin = pin - offset.
            constraints.append(
                Rect(
                    pin_region.xlo - offset.x,
                    pin_region.ylo - offset.y,
                    pin_region.xhi - offset.x,
                    pin_region.yhi - offset.y,
                )
            )

    die_limit = Rect(
        design.die.xlo,
        design.die.ylo,
        max(design.die.xlo, design.die.xhi - lc.width),
        max(design.die.ylo, design.die.yhi - lc.height),
    )
    constraints.append(die_limit)
    rect = intersect_all(constraints)
    if rect is None:
        # Conflicting constraints: the cell cannot move at all, but its own
        # footprint remains a region other registers may move into.
        return FeasibleRegion(cell.footprint, pinned=True)
    # A region no larger than the footprint also cannot host a real move.
    pinned = rect.width <= lc.width and rect.height <= lc.height
    return FeasibleRegion(rect, pinned=pinned)


def analyze_register(
    design: Design,
    cell: Cell,
    timer: Timer,
    config: CompatibilityConfig | None = None,
) -> RegisterInfo:
    """Build the :class:`RegisterInfo` of one register cell.

    This is the per-register refresh unit of the incremental recompose path
    (:class:`repro.flow.session.EcoSession`): feeding it only the registers
    whose context changed is what keeps an ECO edit from paying a
    whole-design re-analysis.  :func:`analyze_registers` is the loop over
    every register of the design.
    """
    config = config or CompatibilityConfig()
    lib = design.library
    lc: RegisterCell = cell.register_cell
    view = RegisterView(cell)
    composable, reason = True, ""
    if cell.dont_touch:
        composable, reason = False, "designer excluded (dont_touch)"
    elif cell.fixed:
        composable, reason = False, "designer excluded (fixed)"
    elif lib.max_width_for(lc.func_class) <= lc.width_bits:
        if lib.max_width_for(lc.func_class) == 0:
            composable, reason = False, "no equivalent MBR in library"
        else:
            composable, reason = False, "already largest MBR of its class"
    elif view.clock_net is None:
        composable, reason = False, "unclocked register"

    center = cell.center
    info = RegisterInfo(
        cell=cell,
        func_class=lc.func_class,
        bits=view.connected_bit_count if composable else lc.width_bits,
        composable=composable,
        reason=reason,
        clock_net=view.clock_net.name if view.clock_net else None,
        control_key=_control_key(view),
        center_xy=(center.x, center.y),
    )
    if composable:
        rs = timer.register_slack(cell)
        info.d_slack = rs.d_slack
        info.q_slack = rs.q_slack
        info.region = feasible_region(design, cell, timer, config)
    return info


def analyze_registers(
    design: Design,
    timer: Timer,
    scan_model: ScanModel | None = None,
    config: CompatibilityConfig | None = None,
) -> dict[str, RegisterInfo]:
    """Build a :class:`RegisterInfo` for every register in the design.

    Registers are marked non-composable when (a) the designer excluded them
    (``dont_touch``/``fixed``), (b) no larger functionally-equivalent MBR
    exists in the library, or (c) they are already the largest MBR of their
    class — the three exclusion reasons of Section 5.
    """
    config = config or CompatibilityConfig()
    return {
        cell.name: analyze_register(design, cell, timer, config)
        for cell in design.registers()
    }


def info_signature(info: RegisterInfo) -> tuple:
    """Identity-free content fingerprint of one register's analysis.

    Two infos with equal signatures are interchangeable for everything
    downstream of the analyze stage (graph edges, partitioning, candidate
    enumeration, weights, placement windows): every field those consumers
    read is included.  ``field_index`` is deliberately excluded — it is
    per-pass bookkeeping of :class:`repro.core.weights.RegisterField`.
    Floats go through :func:`repr` (exact round-trip), so the comparison is
    bit-level.
    """
    r = info.region.rect
    return (
        info.cell.name,
        info.cell.libcell.name,
        info.func_class.name,
        info.bits,
        info.composable,
        info.reason,
        repr(info.d_slack),
        repr(info.q_slack),
        (repr(r.xlo), repr(r.ylo), repr(r.xhi), repr(r.yhi)),
        info.region.pinned,
        info.clock_net,
        info.control_key,
        (repr(info.center_xy[0]), repr(info.center_xy[1])),
    )


# ---------------------------------------------------------------------------
# Pairwise predicates
# ---------------------------------------------------------------------------


def functionally_compatible(a: RegisterInfo, b: RegisterInfo) -> bool:
    """Same class, same clock (incl. gating), same control nets (Section 2)."""
    return (
        a.composable
        and b.composable
        and a.func_class == b.func_class
        and a.clock_net == b.clock_net
        and a.control_key == b.control_key
    )


def scan_compatible(
    a: RegisterInfo, b: RegisterInfo, scan_model: ScanModel | None
) -> bool:
    """Same scan partition (Section 2).

    Ordering constraints within ordered sections are clique-level (an MBR's
    internal chain must keep the section order) and are enforced during
    candidate enumeration; the pairwise test only requires that merging the
    two registers into *some* MBR is not ruled out — which additionally
    excludes members of two different ordered sections.
    """
    if scan_model is None:
        return True
    if not scan_model.same_partition(a.name, b.name):
        return False
    return scan_model.ordered_positions([a.name, b.name]) is not None


def placement_compatible(a: RegisterInfo, b: RegisterInfo) -> bool:
    """Overlapping timing-feasible regions (Section 2)."""
    return a.region.overlaps(b.region)


def _clip(value: float, config: CompatibilityConfig) -> float:
    if math.isinf(value):
        return config.clip_similarity_at
    return min(value, config.clip_similarity_at)


def timing_compatible(
    a: RegisterInfo, b: RegisterInfo, config: CompatibilityConfig
) -> bool:
    """Similar D slacks, similar Q slacks, no opposing skew pressure.

    The sign rule (Section 2): a register with negative D slack wants a
    *later* clock, one with negative Q slack wants an *earlier* clock;
    merging a (D>0, Q<0) register with a (D<0, Q>0) register would make the
    shared useful-skew assignment a tug of war.
    """
    a_wants_later = a.d_slack < 0.0 <= a.q_slack
    a_wants_earlier = a.q_slack < 0.0 <= a.d_slack
    b_wants_later = b.d_slack < 0.0 <= b.q_slack
    b_wants_earlier = b.q_slack < 0.0 <= b.d_slack
    if (a_wants_later and b_wants_earlier) or (a_wants_earlier and b_wants_later):
        return False

    if abs(_clip(a.d_slack, config) - _clip(b.d_slack, config)) > config.slack_similarity:
        return False
    if abs(_clip(a.q_slack, config) - _clip(b.q_slack, config)) > config.slack_similarity:
        return False
    return True


def compatible(
    a: RegisterInfo,
    b: RegisterInfo,
    scan_model: ScanModel | None,
    config: CompatibilityConfig,
) -> bool:
    """The conjunction of all four Section 2 compatibility senses."""
    return (
        functionally_compatible(a, b)
        and scan_compatible(a, b, scan_model)
        and placement_compatible(a, b)
        and timing_compatible(a, b, config)
    )
