"""Compatibility-graph construction with spatial pruning.

Nodes are composable registers; an edge joins every compatible pair
(Section 3, Fig. 1).  Pairwise testing is quadratic, so registers are first
bucketed by functional group (class + clock + control nets — necessary for
any edge) and then spatially hashed on their feasible-region rectangles so
only potentially-overlapping pairs are tested.
"""

from __future__ import annotations

from collections import defaultdict

import networkx as nx

from repro.core.compatibility import (
    CompatibilityConfig,
    RegisterInfo,
    compatible,
)
from repro.geometry.gridindex import GridBinIndex
from repro.scan.model import ScanModel


def _functional_group_key(info: RegisterInfo):
    return (info.func_class, info.clock_net, info.control_key)


def _spatial_pairs(infos: list[RegisterInfo], cell_size: float):
    """Candidate pairs whose region rectangles may overlap, via the shared
    :class:`~repro.geometry.gridindex.GridBinIndex` over region bounding
    boxes.  Pair order follows bucket insertion order, so the graph's edge
    insertion order — and everything downstream of it — is unchanged from
    the previous in-module grid hash.
    """
    index = GridBinIndex(cell_size)
    for info in infos:
        r = info.region.rect
        index.add(r.xlo, r.ylo, r.xhi, r.yhi)
    return index.candidate_pairs()


def build_compatibility_graph(
    infos: dict[str, RegisterInfo],
    scan_model: ScanModel | None = None,
    config: CompatibilityConfig | None = None,
) -> "nx.Graph":
    """Build the compatibility graph over composable registers.

    Node attributes carry the :class:`RegisterInfo` (key ``info``); edges
    are unweighted — candidate weights come later from the placement-aware
    polygon test (Section 3.2).
    """
    config = config or CompatibilityConfig()
    graph = nx.Graph()
    groups: dict[object, list[RegisterInfo]] = defaultdict(list)
    for info in infos.values():
        if not info.composable:
            continue
        graph.add_node(info.name, info=info)
        groups[_functional_group_key(info)].append(info)

    # Grid cell sized to the typical region so buckets stay small but a
    # rectangle rarely spans many cells.
    cell_size = max(2.0 * config.max_region_distance, 1.0)
    for members in groups.values():
        if len(members) < 2:
            continue
        for i, j in _spatial_pairs(members, cell_size):
            a, b = members[i], members[j]
            if compatible(a, b, scan_model, config):
                graph.add_edge(a.name, b.name)
    return graph


def patch_compatibility_graph(
    graph: "nx.Graph",
    infos: dict[str, RegisterInfo],
    changed: set[str],
    scan_model: ScanModel | None = None,
    config: CompatibilityConfig | None = None,
) -> int:
    """Incrementally patch a compatibility graph in place.

    ``changed`` names registers whose :class:`RegisterInfo` content changed,
    appeared, or disappeared since the graph was built over ``infos``
    (clean nodes still hold the same info objects).  Mirrors
    :meth:`repro.sta.graph.TimingGraph.apply_change`: changed nodes are
    dropped with their edges, the still-composable ones re-added with their
    fresh infos, and edges re-tested only between a changed node and its
    functional group — the graph's invariant (nodes = composable registers,
    edges = all compatible pairs) is restored without touching clean pairs,
    whose predicate inputs are unchanged by construction.

    Returns the number of re-tested (changed, live) nodes.
    """
    config = config or CompatibilityConfig()
    changed = set(changed)
    for name in changed:
        if graph.has_node(name):
            graph.remove_node(name)

    groups: dict[object, list[RegisterInfo]] = defaultdict(list)
    for info in infos.values():
        if info.composable:
            groups[_functional_group_key(info)].append(info)

    live: list[RegisterInfo] = []
    for name in sorted(changed):
        info = infos.get(name)
        if info is None or not info.composable:
            continue
        graph.add_node(name, info=info)
        live.append(info)

    for info in live:
        for partner in groups[_functional_group_key(info)]:
            if partner.name == info.name:
                continue
            if partner.name in changed and partner.name > info.name:
                continue  # changed-changed pair: the higher name tests it
            if compatible(info, partner, scan_model, config):
                graph.add_edge(info.name, partner.name)
    return len(live)
