"""Compatibility-graph construction with spatial pruning.

Nodes are composable registers; an edge joins every compatible pair
(Section 3, Fig. 1).  Pairwise testing is quadratic, so registers are first
bucketed by functional group (class + clock + control nets — necessary for
any edge) and then spatially hashed on their feasible-region rectangles so
only potentially-overlapping pairs are tested.
"""

from __future__ import annotations

from collections import defaultdict

import networkx as nx

from repro.core.compatibility import (
    CompatibilityConfig,
    RegisterInfo,
    compatible,
)
from repro.scan.model import ScanModel


def _functional_group_key(info: RegisterInfo):
    return (info.func_class, info.clock_net, info.control_key)


def _spatial_pairs(infos: list[RegisterInfo], cell_size: float):
    """Candidate pairs whose region rectangles may overlap, via a uniform
    grid hash over region bounding boxes."""
    buckets: dict[tuple[int, int], list[int]] = defaultdict(list)
    for idx, info in enumerate(infos):
        r = info.region.rect
        bx0, bx1 = int(r.xlo // cell_size), int(r.xhi // cell_size)
        by0, by1 = int(r.ylo // cell_size), int(r.yhi // cell_size)
        for bx in range(bx0, bx1 + 1):
            for by in range(by0, by1 + 1):
                buckets[(bx, by)].append(idx)
    seen: set[tuple[int, int]] = set()
    for members in buckets.values():
        for i_pos, i in enumerate(members):
            for j in members[i_pos + 1 :]:
                pair = (i, j) if i < j else (j, i)
                if pair not in seen:
                    seen.add(pair)
                    yield pair


def build_compatibility_graph(
    infos: dict[str, RegisterInfo],
    scan_model: ScanModel | None = None,
    config: CompatibilityConfig | None = None,
) -> "nx.Graph":
    """Build the compatibility graph over composable registers.

    Node attributes carry the :class:`RegisterInfo` (key ``info``); edges
    are unweighted — candidate weights come later from the placement-aware
    polygon test (Section 3.2).
    """
    config = config or CompatibilityConfig()
    graph = nx.Graph()
    groups: dict[object, list[RegisterInfo]] = defaultdict(list)
    for info in infos.values():
        if not info.composable:
            continue
        graph.add_node(info.name, info=info)
        groups[_functional_group_key(info)].append(info)

    # Grid cell sized to the typical region so buckets stay small but a
    # rectangle rarely spans many cells.
    cell_size = max(2.0 * config.max_region_distance, 1.0)
    for members in groups.values():
        if len(members) < 2:
            continue
        for i, j in _spatial_pairs(members, cell_size):
            a, b = members[i], members[j]
            if compatible(a, b, scan_model, config):
                graph.add_edge(a.name, b.name)
    return graph
