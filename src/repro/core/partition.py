"""Compatibility-graph partitioning (paper Section 3).

Maximal-clique enumeration is O(3^(n/3)), so the graph is cut into connected
components, and any component larger than the node bound is decomposed by
K-partitioning *driven by the position of the register clock pins*: nearby
clock sinks stay together, because merging them is what shrinks the clock
tree.  The paper found a 30-node bound the sweet spot — QoR drops below 20
nodes, runtime grows without QoR above 30 (reproduced by the
``partition_bound`` ablation benchmark).
"""

from __future__ import annotations

import networkx as nx

from repro.core.compatibility import RegisterInfo

DEFAULT_MAX_NODES = 30


def _clock_pin_position(info: RegisterInfo):
    pin = info.cell.pins.get(info.cell.register_cell.clock_pin_name)
    loc = pin.location if pin is not None else info.center
    return (loc.x, loc.y)


def _bisect_by_position(graph: nx.Graph, nodes: list[str], max_nodes: int) -> list[list[str]]:
    """Recursively split a node set at the median of the wider clock-pin
    coordinate until every part fits the bound."""
    if len(nodes) <= max_nodes:
        return [nodes]
    positions = {n: _clock_pin_position(graph.nodes[n]["info"]) for n in nodes}
    xs = [p[0] for p in positions.values()]
    ys = [p[1] for p in positions.values()]
    axis = 0 if (max(xs) - min(xs)) >= (max(ys) - min(ys)) else 1
    ordered = sorted(nodes, key=lambda n: (positions[n][axis], n))
    mid = len(ordered) // 2
    return _bisect_by_position(graph, ordered[:mid], max_nodes) + _bisect_by_position(
        graph, ordered[mid:], max_nodes
    )


def partition_component(
    graph: nx.Graph, nodes: list[str], max_nodes: int = DEFAULT_MAX_NODES
) -> list["nx.Graph"]:
    """Split one connected component (its sorted node list) into induced
    subgraph copies of at most ``max_nodes`` nodes.

    The per-component unit of :func:`partition_graph`, exposed so the
    incremental recompose path can partition only dirty components.
    """
    if max_nodes < 2:
        raise ValueError("max_nodes must be at least 2")
    parts: list[nx.Graph] = []
    for chunk in _bisect_by_position(graph, list(nodes), max_nodes):
        sub = graph.subgraph(chunk).copy()
        if sub.number_of_nodes() > 0:
            parts.append(sub)
    return parts


def partition_graph(
    graph: nx.Graph, max_nodes: int = DEFAULT_MAX_NODES
) -> list["nx.Graph"]:
    """Split the compatibility graph into subgraphs of at most ``max_nodes``.

    Connected components are kept whole when they fit; larger components are
    geometrically bisected on clock-pin positions.  Each returned subgraph
    is an induced-subgraph *copy* (edges crossing a cut are dropped — those
    merges are simply not considered, the cost the node bound trades for
    tractability).
    """
    if max_nodes < 2:
        raise ValueError("max_nodes must be at least 2")
    parts: list[nx.Graph] = []
    for component in nx.connected_components(graph):
        parts.extend(partition_component(graph, sorted(component), max_nodes))
    return parts
