"""MBR mapping: choosing the library cell for an assigned MBR (Section 4.1).

The ILP fixes each selected MBR's bit content and functional class; mapping
picks the concrete library cell:

* the cell's **drive resistance** must not exceed the minimum drive
  resistance of the replaced registers — never degrade timing, possibly at
  some area cost;
* among qualifying cells, pick the **lowest clock-pin capacitance** (the
  clock-power objective);
* **external-scan (multi-SI/SO) cells are penalized**: they are chosen only
  when the group's scan ordering cannot be preserved by an internal chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compatibility import RegisterInfo
from repro.library.cells import RegisterCell
from repro.library.functional import FunctionalClass, ScanStyle
from repro.library.library import CellLibrary
from repro.scan.model import ScanModel


@dataclass(frozen=True, slots=True)
class MappingChoice:
    """A resolved library cell for a candidate MBR."""

    cell: RegisterCell
    incomplete: bool
    spare_bits: int


def required_scan_styles(
    members: list[RegisterInfo], scan_model: ScanModel | None
) -> tuple[ScanStyle, ...]:
    """Scan styles able to implement a group's chain constraints.

    Non-scan classes need no scan cell.  Scan groups prefer an internal
    chain; when ordered-section members are not consecutive on their chain,
    only a multi-SI/SO cell can host them (several chains cross the MBR).
    """
    if not members[0].func_class.is_scan:
        return (ScanStyle.NONE,)
    names = [m.name for m in members]
    if scan_model is None or scan_model.consecutive_in_order(names):
        return (ScanStyle.INTERNAL, ScanStyle.MULTI)
    return (ScanStyle.MULTI,)


def candidate_widths(
    library: CellLibrary,
    members: list[RegisterInfo],
    scan_model: ScanModel | None,
) -> tuple[int, ...]:
    """Library widths reachable by this group, respecting scan style."""
    styles = required_scan_styles(members, scan_model)
    return library.widths_for(members[0].func_class, scan_styles=styles)


def select_library_cell(
    library: CellLibrary,
    members: list[RegisterInfo],
    width: int,
    scan_model: ScanModel | None = None,
) -> MappingChoice | None:
    """Pick the best library cell of exactly ``width`` bits for the group.

    Returns ``None`` when no cell of the class/width satisfies the scan and
    drive-resistance constraints.  Preference order:

    1. internal-scan before multi-scan (external chains cost routing);
    2. drive resistance <= min of the replaced registers;
    3. lowest clock-pin capacitance, then lowest area.
    """
    bits = sum(m.bits for m in members)
    func_class = members[0].func_class
    min_drive_res = min(m.cell.register_cell.drive_resistance for m in members)
    styles = required_scan_styles(members, scan_model)
    return select_library_cell_keyed(
        library, func_class, styles, width, bits, min_drive_res
    )


def select_library_cell_keyed(
    library: CellLibrary,
    func_class: FunctionalClass,
    styles: tuple[ScanStyle, ...],
    width: int,
    bits: int,
    min_drive_res: float,
) -> MappingChoice | None:
    """The :func:`select_library_cell` core, keyed by its actual inputs.

    The choice depends on the group only through ``(func_class, styles,
    width, bits, min_drive_res)`` — candidate enumeration memoizes on that
    key, since thousands of sub-cliques of one subgraph share a handful of
    values.
    """
    if width < bits:
        return None
    for style in styles:  # ordered by preference
        options = [
            c
            for c in library.register_cells(func_class, width, scan_styles=(style,))
            if c.drive_resistance <= min_drive_res + 1e-12
        ]
        if not options:
            continue
        best = min(options, key=lambda c: (c.clock_pin_cap, c.area, c.name))
        return MappingChoice(cell=best, incomplete=width > bits, spare_bits=width - bits)
    return None


def incomplete_area_acceptable(choice: MappingChoice, members: list[RegisterInfo]) -> bool:
    """Section 3's incomplete-MBR filter: the incomplete cell's area per
    *useful* bit must be below the members' average area per bit."""
    if not choice.incomplete:
        return True
    useful_bits = sum(m.bits for m in members)
    if useful_bits == 0:
        return False
    member_area = sum(m.cell.libcell.area for m in members)
    member_area_per_bit = member_area / useful_bits
    # "Area per bit of the incomplete MBR" is per physical bit: the wider
    # cell must be intrinsically more area-efficient than what it replaces.
    return choice.cell.area_per_bit < member_area_per_bit


def area_overhead_fraction(choice: MappingChoice, members: list[RegisterInfo]) -> float:
    """Relative area change of replacing the members with the chosen cell —
    the flow-level incomplete-MBR knob (Section 5 allows at most +5%)."""
    member_area = sum(m.cell.libcell.area for m in members)
    if member_area <= 0.0:
        return float("inf")
    return (choice.cell.area - member_area) / member_area
