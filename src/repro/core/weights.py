"""Placement-aware candidate weights (paper Section 3.2).

Each candidate MBR gets a *test polygon*: the convex hull of the corner
points of its constituent registers.  Registers whose center falls inside
the polygon but are not constituents are *blocking registers*; with ``b``
total bits and ``n`` blockers the weight is

    w = 1/b          when n == 0          (clean: bigger is better)
    w = b * 2^n      when 0 < n < b       (crowded: exponentially penalized)
    w = infinity     when n >= b          (hopelessly entangled: dropped)

Original (unmerged) registers keep weight exactly 1 regardless of width —
Fig. 3 lists every original register, including the 4-bit E4, at 1.00.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.compatibility import RegisterInfo
from repro.geometry.hull import convex_hull, point_in_convex_polygon
from repro.geometry.point import Point

KEEP_WEIGHT = 1.0
"""Weight of the "leave this register as it is" singleton candidate."""


class RegisterField:
    """Vectorized register-center index for the blocking test.

    The weight pass evaluates tens of thousands of candidate polygons
    against every register of the design; holding the centers in numpy
    arrays turns each candidate's blocking count into a handful of
    vector operations.
    """

    def __init__(self, registers: list[RegisterInfo]) -> None:
        self.registers = registers
        for i, r in enumerate(registers):
            r.field_index = i
        if registers:
            self.xs = np.array([r.center_xy[0] for r in registers])
            self.ys = np.array([r.center_xy[1] for r in registers])
        else:  # pragma: no cover - degenerate designs
            self.xs = np.zeros(0)
            self.ys = np.zeros(0)

    def centers_in_box(
        self,
        xlo: float,
        ylo: float,
        xhi: float,
        yhi: float,
        exclude: set[str],
    ) -> list[tuple[float, float]]:
        """Sorted centers of registers strictly inside a box, minus ``exclude``.

        Uses the same strict-interior test as :meth:`blockers`' bounding-box
        prefilter, so the result is exactly the set of registers that can
        ever block a candidate polygon contained in the box — the
        composition cache fingerprints components with it.
        """
        if not len(self.xs):
            return []
        mask = (self.xs > xlo) & (self.xs < xhi) & (self.ys > ylo) & (self.ys < yhi)
        return sorted(
            (float(self.xs[j]), float(self.ys[j]))
            for j in np.flatnonzero(mask)
            if self.registers[j].name not in exclude
        )

    def blockers(self, members: list[RegisterInfo]) -> list[RegisterInfo]:
        """Registers strictly inside the members' test polygon.

        The members' footprint bounding box prefilters the field; when no
        *foreign* register survives the box — the common case for clean
        bank groups — the convex hull is never even built.
        """
        if not len(self.xs):
            return []
        xlo = ylo = math.inf
        xhi = yhi = -math.inf
        for m in members:
            fp = m.cell.footprint
            xlo, ylo = min(xlo, fp.xlo), min(ylo, fp.ylo)
            xhi, yhi = max(xhi, fp.xhi), max(yhi, fp.yhi)
        mask = (self.xs > xlo) & (self.xs < xhi) & (self.ys > ylo) & (self.ys < yhi)
        for m in members:
            idx = getattr(m, "field_index", None)
            if idx is not None:
                mask[idx] = False
        idx = np.flatnonzero(mask)
        if not idx.size:
            return []

        polygon = test_polygon(members)
        if len(polygon) < 3:
            return []
        xs, ys = self.xs[idx], self.ys[idx]
        inside = np.ones(idx.size, dtype=bool)
        n = len(polygon)
        for i in range(n):
            a, b = polygon[i], polygon[(i + 1) % n]
            scale = max(abs(b.x - a.x), abs(b.y - a.y), 1.0)
            cross = (b.x - a.x) * (ys - a.y) - (b.y - a.y) * (xs - a.x)
            inside &= cross > 1e-9 * scale  # strict interior
            if not inside.any():
                return []
        return [self.registers[j] for j in idx[inside]]


def test_polygon(members: list[RegisterInfo]) -> list[Point]:
    """The convex hull of the members' footprint corners (Fig. 2)."""
    corners: list[Point] = []
    for info in members:
        corners.extend(info.cell.footprint.corners())
    return convex_hull(corners)


def blocking_registers(
    members: list[RegisterInfo],
    all_registers: list[RegisterInfo] | RegisterField,
) -> list[RegisterInfo]:
    """Registers (of any kind) whose center lies inside the test polygon and
    that are not themselves members.

    Fig. 2's caption says "we check inside the surrounding polygon of the
    clique for the presence of other register" — *any* register competes for
    the region's placement/routing resources, not only compatible ones.

    A :class:`RegisterField` (vectorized) may be passed instead of the raw
    list — candidate enumeration does this, since the weight pass is its
    hottest loop; the list path keeps the simple reference implementation.
    """
    if isinstance(all_registers, RegisterField):
        return all_registers.blockers(members)
    member_names = {m.name for m in members}

    xlo = ylo = math.inf
    xhi = yhi = -math.inf
    for m in members:
        fp = m.cell.footprint
        xlo, ylo = min(xlo, fp.xlo), min(ylo, fp.ylo)
        xhi, yhi = max(xhi, fp.xhi), max(yhi, fp.yhi)

    polygon: list[Point] | None = None
    blockers: list[RegisterInfo] = []
    for info in all_registers:
        x, y = info.center_xy
        if not (xlo < x < xhi and ylo < y < yhi):
            continue
        if info.name in member_names:
            continue
        if polygon is None:
            polygon = test_polygon(members)
        if point_in_convex_polygon(Point(x, y), polygon, include_boundary=False):
            blockers.append(info)
    return blockers


def weight_formula(bits: int, blockers: int) -> float:
    """The Section 3.2 weight for ``bits`` total bits and ``blockers``
    intervening registers."""
    if bits <= 0:
        raise ValueError("candidate must carry at least one bit")
    if blockers == 0:
        return 1.0 / bits
    if blockers < bits:
        return float(bits) * (2.0 ** blockers)
    return math.inf


def candidate_weight(
    members: list[RegisterInfo],
    all_registers: list[RegisterInfo] | RegisterField,
    mapped_bits: int | None = None,
) -> tuple[float, int]:
    """Weight of a candidate MBR, and its blocker count.

    ``mapped_bits`` overrides the bit count used by the formula (the sum of
    the members' connected bits by default) — Fig. 3 weights the 5-bit
    candidate AE at 1/5 even though it maps to an 8-bit incomplete cell, so
    the formula uses the *useful* bits.
    """
    if len(members) == 1:
        return KEEP_WEIGHT, 0
    bits = mapped_bits if mapped_bits is not None else sum(m.bits for m in members)
    n = len(blocking_registers(members, all_registers))
    return weight_formula(bits, n), n
