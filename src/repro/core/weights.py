"""Placement-aware candidate weights (paper Section 3.2).

Each candidate MBR gets a *test polygon*: the convex hull of the corner
points of its constituent registers.  Registers whose center falls inside
the polygon but are not constituents are *blocking registers*; with ``b``
total bits and ``n`` blockers the weight is

    w = 1/b          when n == 0          (clean: bigger is better)
    w = b * 2^n      when 0 < n < b       (crowded: exponentially penalized)
    w = infinity     when n >= b          (hopelessly entangled: dropped)

Original (unmerged) registers keep weight exactly 1 regardless of width —
Fig. 3 lists every original register, including the 4-bit E4, at 1.00.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.compatibility import RegisterInfo
from repro.geometry.hull import convex_hull, hull_xy, point_in_convex_polygon
from repro.geometry.point import Point

KEEP_WEIGHT = 1.0
"""Weight of the "leave this register as it is" singleton candidate."""


class RegisterField:
    """Vectorized register-center index for the blocking test.

    The weight pass evaluates tens of thousands of candidate polygons
    against every register of the design; holding the centers in numpy
    arrays turns each candidate's blocking count into a handful of
    vector operations.
    """

    def __init__(self, registers: list[RegisterInfo]) -> None:
        self.registers = registers
        for i, r in enumerate(registers):
            r.field_index = i
        if registers:
            self.xs = np.array([r.center_xy[0] for r in registers])
            self.ys = np.array([r.center_xy[1] for r in registers])
        else:  # pragma: no cover - degenerate designs
            self.xs = np.zeros(0)
            self.ys = np.zeros(0)
        # x-sorted view for the bounding-box prefilter: two binary searches
        # replace four full-field comparisons per candidate.
        self._xorder = np.argsort(self.xs, kind="stable").tolist()
        self._xs_sorted = self.xs[self._xorder]
        self._xs_list = self.xs.tolist()
        self._ys_list = self.ys.tolist()
        # Centers' y in x-sorted order: the prefilter walks this list
        # positionally, touching ``_xorder`` only for survivors.
        self._ys_by_x = self.ys[self._xorder].tolist() if registers else []
        self._ys_by_x_arr = self.ys[self._xorder] if registers else np.zeros(0)
        self._xorder_arr = np.array(self._xorder, dtype=np.intp)
        # Footprint extents by field index, for the batched bounding boxes.
        if registers:
            self._fxlo = np.array([r.cell.footprint.xlo for r in registers])
            self._fylo = np.array([r.cell.footprint.ylo for r in registers])
            self._fxhi = np.array([r.cell.footprint.xhi for r in registers])
            self._fyhi = np.array([r.cell.footprint.yhi for r in registers])
        else:  # pragma: no cover - degenerate designs
            self._fxlo = self._fylo = self._fxhi = self._fyhi = np.zeros(0)

    def centers_in_box(
        self,
        xlo: float,
        ylo: float,
        xhi: float,
        yhi: float,
        exclude: set[str],
    ) -> list[tuple[float, float]]:
        """Sorted centers of registers strictly inside a box, minus ``exclude``.

        Uses the same strict-interior test as :meth:`blockers`' bounding-box
        prefilter, so the result is exactly the set of registers that can
        ever block a candidate polygon contained in the box — the
        composition cache fingerprints components with it.
        """
        if not len(self.xs):
            return []
        mask = (self.xs > xlo) & (self.xs < xhi) & (self.ys > ylo) & (self.ys < yhi)
        return sorted(
            (float(self.xs[j]), float(self.ys[j]))
            for j in np.flatnonzero(mask)
            if self.registers[j].name not in exclude
        )

    def blockers(
        self, members: list[RegisterInfo], cap: int | None = None
    ) -> list[RegisterInfo]:
        """Registers strictly inside the members' test polygon.

        The members' footprint bounding box prefilters the field; when no
        *foreign* register survives the box — the common case for clean
        bank groups — the convex hull is never even built.

        ``cap`` stops the scan once that many blockers are found.  The
        weight formula saturates at ``blockers >= bits`` (the candidate is
        dropped), so callers that only weigh the group never need more than
        ``bits`` of them.
        """
        if not len(self.xs):
            return []
        xlo = ylo = math.inf
        xhi = yhi = -math.inf
        same_row = True
        row = None
        for m in members:
            fp = m.cell.footprint
            if row is None:
                row = (fp.ylo, fp.yhi)
            elif same_row and (fp.ylo, fp.yhi) != row:
                same_row = False
            xlo, ylo = min(xlo, fp.xlo), min(ylo, fp.ylo)
            xhi, yhi = max(xhi, fp.xhi), max(yhi, fp.yhi)
        lo = int(np.searchsorted(self._xs_sorted, xlo, side="right"))
        hi = int(np.searchsorted(self._xs_sorted, xhi, side="left"))
        if lo >= hi:
            return []
        exclude = set()
        for m in members:
            fi = getattr(m, "field_index", None)
            if fi is not None:
                exclude.add(fi)
        xorder = self._xorder
        ys_by_x = self._ys_by_x
        idx = [
            j
            for k in range(lo, hi)
            if ylo < ys_by_x[k] < yhi and (j := xorder[k]) not in exclude
        ]
        if not idx:
            return []
        idx.sort()  # ascending field order, as the mask prefilter produced
        return self._inside(members, idx, xlo, ylo, xhi, yhi, same_row, cap)

    def _inside(
        self,
        members: list[RegisterInfo],
        idx: list[int],
        xlo: float,
        ylo: float,
        xhi: float,
        yhi: float,
        same_row: bool,
        cap: int | None,
    ) -> list[RegisterInfo]:
        """Interior test of :meth:`blockers`, shared with the batched path.

        ``idx`` are bounding-box survivors in ascending field order.
        """
        if same_row and xlo < xhi and ylo < yhi:
            # All member footprints span the same row: the corner hull is
            # exactly the bounding box.  (hull_xy would dedup the shared
            # ylo/yhi corners and pop the collinear interior ones, leaving
            # these four CCW vertices — skip the sort-and-chain work.)
            polygon = [(xlo, ylo), (xhi, ylo), (xhi, yhi), (xlo, yhi)]
        else:
            polygon = hull_xy(
                [
                    c
                    for m in members
                    for fp in (m.cell.footprint,)
                    for c in (
                        (fp.xlo, fp.ylo),
                        (fp.xhi, fp.ylo),
                        (fp.xhi, fp.yhi),
                        (fp.xlo, fp.yhi),
                    )
                ]
            )
        if len(polygon) < 3:
            return []
        n = len(polygon)
        edges = []
        for i in range(n):
            ax, ay = polygon[i]
            bx, by = polygon[(i + 1) % n]
            scale = max(abs(bx - ax), abs(by - ay), 1.0)
            edges.append((ax, ay, bx - ax, by - ay, 1e-9 * scale))
        if cap is not None or len(idx) <= 48:
            # Tiny survivor sets (the common case): scalar edge tests with
            # the exact same float expression beat per-edge numpy overhead.
            xs_all = self._xs_list
            ys_all = self._ys_list
            out = []
            for j in idx:
                x, y = xs_all[j], ys_all[j]
                for ax, ay, dx, dy, thr in edges:
                    if not dx * (y - ay) - dy * (x - ax) > thr:
                        break  # on or outside this edge: not strict interior
                else:
                    out.append(self.registers[j])
                    if cap is not None and len(out) >= cap:
                        return out
            return out
        arr = np.array(idx)
        xs, ys = self.xs[arr], self.ys[arr]
        inside = np.ones(arr.size, dtype=bool)
        for ax, ay, dx, dy, thr in edges:
            cross = dx * (ys - ay) - dy * (xs - ax)
            inside &= cross > thr  # strict interior
            if not inside.any():
                return []
        return [self.registers[j] for j in arr[inside]]

    def blockers_count_batch(
        self, member_lists: list[list[RegisterInfo]], caps: list[int]
    ) -> list[int]:
        """Blocker counts, saturated at ``caps``, for many candidates at once.

        One vectorized pass replaces the per-candidate bounding boxes,
        binary searches, and slab scans of :meth:`blockers`; the polygon
        interior test still runs per candidate on its few survivors through
        the same :meth:`_inside` helper, so every entry equals
        ``min(len(self.blockers(members)), cap)``.  Members that are not in
        the field fall back to the scalar path for that candidate.
        """
        counts = [0] * len(member_lists)
        if not member_lists or not len(self.xs):
            return counts
        flat: list[int] = []
        offsets: list[int] = []
        batched: list[int] = []
        for ci, members in enumerate(member_lists):
            fis = [getattr(m, "field_index", None) for m in members]
            if any(fi is None for fi in fis):
                counts[ci] = len(self.blockers(members, cap=caps[ci]))
                continue
            offsets.append(len(flat))
            flat.extend(fis)
            batched.append(ci)
        if not batched:
            return counts
        nb = len(batched)
        flat_idx = np.asarray(flat, dtype=np.intp)
        starts = np.asarray(offsets, dtype=np.intp)
        fylo = self._fylo[flat_idx]
        fyhi = self._fyhi[flat_idx]
        bxlo = np.minimum.reduceat(self._fxlo[flat_idx], starts)
        bylo = np.minimum.reduceat(fylo, starts)
        bxhi = np.maximum.reduceat(self._fxhi[flat_idx], starts)
        byhi = np.maximum.reduceat(fyhi, starts)
        # Same row <=> every member footprint has the same y extents.
        same_row = (np.maximum.reduceat(fylo, starts) == bylo) & (
            np.minimum.reduceat(fyhi, starts) == byhi
        )
        lo = np.searchsorted(self._xs_sorted, bxlo, side="right")
        hi = np.searchsorted(self._xs_sorted, bxhi, side="left")
        spans = np.maximum(hi - lo, 0)
        total = int(spans.sum())
        if not total:
            return counts
        # Concatenated [lo, hi) slab positions, candidate-major.
        reps = np.repeat(np.arange(nb), spans)
        csum = np.concatenate(([0], np.cumsum(spans)))
        pos = np.arange(total) - csum[reps] + lo[reps]
        ys_slab = self._ys_by_x_arr[pos]
        in_y = (ys_slab > bylo[reps]) & (ys_slab < byhi[reps])
        reps = reps[in_y]
        j = self._xorder_arr[pos[in_y]]
        # Drop the candidates' own members via (candidate, register) keys.
        nreg = len(self.registers)
        lengths = np.diff(np.append(starts, len(flat)))
        mkeys = np.repeat(np.arange(nb), lengths) * nreg + flat_idx
        foreign = ~np.isin(reps * nreg + j, mkeys)
        reps = reps[foreign]
        j = j[foreign]
        order = np.lexsort((j, reps))  # per candidate, ascending field order
        reps = reps[order]
        j = j[order]
        bounds = np.searchsorted(reps, np.arange(nb + 1))
        active = np.flatnonzero(bounds[1:] > bounds[:-1])
        if not len(active):
            return counts
        # Build each surviving candidate's polygon edges once (python — the
        # hull of a handful of footprint corners), then run every
        # (survivor, edge) strict-interior test in a single vectorized
        # pass.  The cross product uses the exact float expression of the
        # scalar :meth:`_inside` loop, so each verdict is bit-identical;
        # the saturated count ``min(inside, cap)`` matches its early-exit.
        e_ax: list[float] = []
        e_ay: list[float] = []
        e_dx: list[float] = []
        e_dy: list[float] = []
        e_thr: list[float] = []
        e_counts: list[int] = []
        surv_spans: list[int] = []
        kept: list[int] = []
        for bi in active:
            ci = batched[bi]
            xlo, ylo = float(bxlo[bi]), float(bylo[bi])
            xhi, yhi = float(bxhi[bi]), float(byhi[bi])
            if same_row[bi] and xlo < xhi and ylo < yhi:
                polygon = [(xlo, ylo), (xhi, ylo), (xhi, yhi), (xlo, yhi)]
            else:
                polygon = hull_xy(
                    [
                        c
                        for m in member_lists[ci]
                        for fp in (m.cell.footprint,)
                        for c in (
                            (fp.xlo, fp.ylo),
                            (fp.xhi, fp.ylo),
                            (fp.xhi, fp.yhi),
                            (fp.xlo, fp.yhi),
                        )
                    ]
                )
            npoly = len(polygon)
            if npoly < 3:
                continue  # degenerate polygon: no strict interior
            for i in range(npoly):
                pax, pay = polygon[i]
                pbx, pby = polygon[(i + 1) % npoly]
                scale = max(abs(pbx - pax), abs(pby - pay), 1.0)
                e_ax.append(pax)
                e_ay.append(pay)
                e_dx.append(pbx - pax)
                e_dy.append(pby - pay)
                e_thr.append(1e-9 * scale)
            e_counts.append(npoly)
            surv_spans.append(int(bounds[bi + 1] - bounds[bi]))
            kept.append(int(bi))
        if not kept:
            return counts
        edges_per = np.asarray(e_counts, dtype=np.intp)
        survs_per = np.asarray(surv_spans, dtype=np.intp)
        pairs_per = edges_per * survs_per
        cand = np.repeat(np.arange(len(kept)), pairs_per)
        pair0 = np.concatenate(([0], np.cumsum(pairs_per)))
        pos2 = np.arange(int(pairs_per.sum())) - pair0[cand]
        # Survivor-major within a candidate: a survivor's edge verdicts
        # are contiguous, ready for one reduceat.
        surv_local = pos2 // edges_per[cand]
        edge_local = pos2 - surv_local * edges_per[cand]
        surv_start = bounds[np.asarray(kept, dtype=np.intp)]
        edge_start = np.concatenate(([0], np.cumsum(edges_per)))[:-1]
        sg = j[surv_start[cand] + surv_local]
        eg = edge_start[cand] + edge_local
        pax = np.asarray(e_ax)[eg]
        pay = np.asarray(e_ay)[eg]
        pdx = np.asarray(e_dx)[eg]
        pdy = np.asarray(e_dy)[eg]
        cross = pdx * (self.ys[sg] - pay) - pdy * (self.xs[sg] - pax)
        ok = cross > np.asarray(e_thr)[eg]  # strict interior, per edge
        surv_offsets = np.concatenate(
            ([0], np.cumsum(np.repeat(edges_per, survs_per)))
        )[:-1]
        inside = np.bitwise_and.reduceat(ok, surv_offsets)
        surv0 = np.concatenate(([0], np.cumsum(survs_per)))
        inside_per = np.add.reduceat(inside.astype(np.intp), surv0[:-1])
        for row, bi in enumerate(kept):
            ci = batched[bi]
            counts[ci] = min(int(inside_per[row]), caps[ci])
        return counts


def test_polygon(members: list[RegisterInfo]) -> list[Point]:
    """The convex hull of the members' footprint corners (Fig. 2)."""
    corners: list[Point] = []
    for info in members:
        corners.extend(info.cell.footprint.corners())
    return convex_hull(corners)


def blocking_registers(
    members: list[RegisterInfo],
    all_registers: list[RegisterInfo] | RegisterField,
) -> list[RegisterInfo]:
    """Registers (of any kind) whose center lies inside the test polygon and
    that are not themselves members.

    Fig. 2's caption says "we check inside the surrounding polygon of the
    clique for the presence of other register" — *any* register competes for
    the region's placement/routing resources, not only compatible ones.

    A :class:`RegisterField` (vectorized) may be passed instead of the raw
    list — candidate enumeration does this, since the weight pass is its
    hottest loop; the list path keeps the simple reference implementation.
    """
    if isinstance(all_registers, RegisterField):
        return all_registers.blockers(members)
    member_names = {m.name for m in members}

    xlo = ylo = math.inf
    xhi = yhi = -math.inf
    for m in members:
        fp = m.cell.footprint
        xlo, ylo = min(xlo, fp.xlo), min(ylo, fp.ylo)
        xhi, yhi = max(xhi, fp.xhi), max(yhi, fp.yhi)

    polygon: list[Point] | None = None
    blockers: list[RegisterInfo] = []
    for info in all_registers:
        x, y = info.center_xy
        if not (xlo < x < xhi and ylo < y < yhi):
            continue
        if info.name in member_names:
            continue
        if polygon is None:
            polygon = test_polygon(members)
        if point_in_convex_polygon(Point(x, y), polygon, include_boundary=False):
            blockers.append(info)
    return blockers


def weight_formula(bits: int, blockers: int) -> float:
    """The Section 3.2 weight for ``bits`` total bits and ``blockers``
    intervening registers."""
    if bits <= 0:
        raise ValueError("candidate must carry at least one bit")
    if blockers == 0:
        return 1.0 / bits
    if blockers < bits:
        return float(bits) * (2.0 ** blockers)
    return math.inf


def candidate_weight(
    members: list[RegisterInfo],
    all_registers: list[RegisterInfo] | RegisterField,
    mapped_bits: int | None = None,
    saturate: bool = False,
) -> tuple[float, int]:
    """Weight of a candidate MBR, and its blocker count.

    ``mapped_bits`` overrides the bit count used by the formula (the sum of
    the members' connected bits by default) — Fig. 3 weights the 5-bit
    candidate AE at 1/5 even though it maps to an 8-bit incomplete cell, so
    the formula uses the *useful* bits.

    ``saturate=True`` lets the blocker scan stop at ``bits`` of them: the
    weight is infinite from that point on whatever the true count, so the
    returned count becomes ``min(n, bits)``.  Candidate enumeration opts in
    (it drops infinite-weight groups without reading the count); leave it
    off when the exact count matters.
    """
    if len(members) == 1:
        return KEEP_WEIGHT, 0
    bits = mapped_bits if mapped_bits is not None else sum(m.bits for m in members)
    if saturate and isinstance(all_registers, RegisterField):
        n = len(all_registers.blockers(members, cap=bits))
    else:
        n = len(blocking_registers(members, all_registers))
    return weight_formula(bits, n), n


def candidate_weights_batch(
    field: RegisterField,
    member_lists: list[list[RegisterInfo]],
    bits_list: list[int],
) -> list[tuple[float, int]]:
    """Saturating :func:`candidate_weight` over many multi-member groups.

    Returns one ``(weight, blockers)`` pair per group, with blocker counts
    saturated at the group's bit total — exactly what enumeration's
    per-candidate calls produced, computed in one vectorized field pass.
    """
    counts = field.blockers_count_batch(member_lists, list(bits_list))
    return [(weight_formula(b, n), n) for b, n in zip(bits_list, counts)]
