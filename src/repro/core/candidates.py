"""Candidate-MBR enumeration over one compatibility subgraph (Section 3)."""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.cliques import enumerate_maximal_cliques, enumerate_subcliques
from repro.core.compatibility import RegisterInfo
from repro.core.mapping import (
    MappingChoice,
    candidate_widths,
    incomplete_area_acceptable,
    select_library_cell,
)
from repro.core.weights import KEEP_WEIGHT, candidate_weight
from repro.geometry.region import FeasibleRegion, common_region
from repro.library.library import CellLibrary
from repro.scan.model import ScanModel


@dataclass
class CandidateMBR:
    """One valid MBR candidate: a clique plus its mapping and ILP weight.

    Singleton candidates ("keep the register as is") have ``members`` of
    length one, ``mapping=None``, and weight exactly 1 — they guarantee ILP
    feasibility and model the do-nothing choice.
    """

    members: tuple[str, ...]
    bits: int
    weight: float
    blockers: int
    mapping: MappingChoice | None
    region: FeasibleRegion | None

    @property
    def is_singleton(self) -> bool:
        return len(self.members) == 1

    @property
    def is_incomplete(self) -> bool:
        return self.mapping is not None and self.mapping.incomplete


@dataclass(frozen=True, slots=True)
class CandidateConfig:
    """Knobs of candidate enumeration.

    ``allow_incomplete``
        Enable incomplete MBRs (Section 3): cliques whose bit sum matches no
        library width may map to the next larger cell, subject to the
        area-per-bit rule and ``max_incomplete_area_overhead``.
    ``max_incomplete_area_overhead``
        Flow-level cap on the relative area increase an incomplete MBR may
        cost (the paper's experiments use 5%).
    ``max_candidates_per_subgraph``
        Safety valve for pathological dense subgraphs: when exceeded, the
        lightest candidates are kept (plus all singletons).
    ``max_group_spread``
        Maximum half-perimeter (um) of the bounding box of a candidate's
        register centers.  Merging registers that are compatible but far
        apart stretches every data net toward the common MBR location; this
        cap is what keeps total wirelength from growing (the paper reports
        *reduced* wirelength after composition).
    ``multi_scan_weight_penalty``
        Weight multiplier for candidates that can only map to multi-SI/SO
        cells (Section 4.1: external-scan cells "are penalized during MBR
        selection" for their chain-routing cost).  Small scattered merges on
        ordered chains stop paying off; large ones still win.
    ``use_placement_weights``
        Ablation switch: when False, every candidate is weighted ``1/bits``
        with no blocking-register penalty — the "without this, both routing
        congestion and wire-length can significantly increase" configuration
        of Section 3.2.
    """

    allow_incomplete: bool = True
    max_incomplete_area_overhead: float = 0.05
    max_candidates_per_subgraph: int = 4000
    max_group_spread: float = 18.0
    multi_scan_weight_penalty: float = 20.0
    use_placement_weights: bool = True
    window_enumeration_above: int = 12
    """Clique size beyond which sub-clique enumeration switches from the
    exhaustive subset DP to spatially-contiguous windows.  In a dense
    clique, a subset that skips over a nearer register is blocked by it
    (Section 3.2) and a blocked candidate can never beat its members'
    singletons in the ILP — so only spatially contiguous groups are worth
    enumerating; this keeps dense banks (and decomposed MBRs) tractable."""


def enumerate_candidates(
    subgraph: nx.Graph,
    all_registers: list[RegisterInfo],
    library: CellLibrary,
    scan_model: ScanModel | None = None,
    config: CandidateConfig | None = None,
) -> list[CandidateMBR]:
    """All valid candidate MBRs of one compatibility subgraph.

    For every maximal clique, enumerate the sub-cliques whose bit totals the
    library can host; validate each against the group-level constraints that
    pairwise edges cannot express (common feasible region, scan ordering,
    mapping existence, incomplete-MBR economics); weight with the placement
    polygon.  Singletons for every node are always included.
    """
    config = config or CandidateConfig()
    infos: dict[str, RegisterInfo] = {
        n: subgraph.nodes[n]["info"] for n in subgraph.nodes
    }

    candidates: list[CandidateMBR] = [
        CandidateMBR(
            members=(name,),
            bits=info.bits,
            weight=KEEP_WEIGHT,
            blockers=0,
            mapping=None,
            region=info.region,
        )
        for name, info in sorted(infos.items())
    ]

    seen: set[frozenset[str]] = set()
    multi: list[CandidateMBR] = []
    bits_of = {n: infos[n].bits for n in infos}
    for clique in enumerate_maximal_cliques(subgraph):
        if len(clique) < 2:
            continue
        members_list = [infos[n] for n in clique]
        widths = candidate_widths(library, members_list, scan_model)
        if not widths:
            continue
        max_bits = max(widths)
        if len(clique) > config.window_enumeration_above:
            subcliques = _window_subcliques(
                [infos[n] for n in sorted(clique)],
                bits_of,
                set(widths),
                max_bits,
                config.allow_incomplete,
            )
        else:
            subcliques = enumerate_subcliques(
                clique,
                bits_of,
                target_bit_sums=set(widths),
                max_bits=max_bits,
                allow_incomplete=config.allow_incomplete,
            )
        for subclique in subcliques:
            if subclique in seen:
                continue
            seen.add(subclique)
            cand = _validate_group(
                [infos[n] for n in sorted(subclique)],
                all_registers,
                library,
                scan_model,
                config,
            )
            if cand is not None:
                multi.append(cand)

    # Deterministic candidate order: ILP tie-breaking must not depend on
    # hash-seed-sensitive set iteration.
    multi.sort(key=lambda c: (c.weight, -c.bits, c.members))
    if len(multi) > config.max_candidates_per_subgraph:
        multi = multi[: config.max_candidates_per_subgraph]
    return candidates + multi


def _window_subcliques(
    members: list[RegisterInfo],
    bits_of: dict[str, int],
    target_bit_sums: set[int],
    max_bits: int,
    allow_incomplete: bool,
) -> list[frozenset[str]]:
    """Spatially-contiguous sub-cliques of a large clique.

    Members are serpentine-sorted (row, then x alternating); every window
    ``members[i:j]`` whose bit sum the library can host becomes a
    candidate.  O(k^2) candidates instead of exponentially many — see
    ``CandidateConfig.window_enumeration_above`` for why this loses nothing
    the ILP could actually select.
    """

    def serpentine(info: RegisterInfo):
        row = round(info.center_xy[1])
        x = info.center_xy[0] if row % 2 == 0 else -info.center_xy[0]
        return (row, x, info.name)

    ordered = sorted(members, key=serpentine)
    out: list[frozenset[str]] = []
    k = len(ordered)
    for i in range(k):
        total = 0
        for j in range(i, k):
            total += bits_of[ordered[j].name]
            if total > max_bits:
                break
            if j == i:
                continue  # singletons handled separately
            exact = total in target_bit_sums
            incomplete_ok = allow_incomplete and any(w > total for w in target_bit_sums)
            if exact or incomplete_ok:
                out.append(frozenset(m.name for m in ordered[i : j + 1]))
    return out


def _validate_group(
    members: list[RegisterInfo],
    all_registers: list[RegisterInfo],
    library: CellLibrary,
    scan_model: ScanModel | None,
    config: CandidateConfig,
) -> CandidateMBR | None:
    """Group-level validation and weighting of one sub-clique."""
    region = common_region([m.region for m in members])
    if region is None:
        return None

    xs = [m.center_xy[0] for m in members]
    ys = [m.center_xy[1] for m in members]
    if (max(xs) - min(xs)) + (max(ys) - min(ys)) > config.max_group_spread:
        return None

    bits = sum(m.bits for m in members)
    widths = candidate_widths(library, members, scan_model)
    fitting = [w for w in widths if w >= bits]
    if not fitting:
        return None
    width = min(fitting)

    choice = select_library_cell(library, members, width, scan_model)
    if choice is None:
        return None
    if choice.incomplete:
        if not config.allow_incomplete:
            return None
        if not incomplete_area_acceptable(choice, members):
            return None
        from repro.core.mapping import area_overhead_fraction

        if area_overhead_fraction(choice, members) > config.max_incomplete_area_overhead:
            return None

    if config.use_placement_weights:
        weight, blockers = candidate_weight(members, all_registers, mapped_bits=bits)
        if weight == float("inf"):
            return None  # n >= b: hopeless, drop before the ILP sees it
    else:
        weight, blockers = 1.0 / bits, 0  # ablation: ignore the layout
    from repro.library.functional import ScanStyle

    if choice.cell.scan_style is ScanStyle.MULTI:
        weight *= config.multi_scan_weight_penalty
    return CandidateMBR(
        members=tuple(m.name for m in members),
        bits=bits,
        weight=weight,
        blockers=blockers,
        mapping=choice,
        region=region,
    )
