"""Candidate-MBR enumeration over one compatibility subgraph (Section 3)."""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from repro.core.cliques import enumerate_maximal_cliques, enumerate_subcliques
from repro.core.compatibility import RegisterInfo
from repro.core.mapping import (
    MappingChoice,
    area_overhead_fraction,
    incomplete_area_acceptable,
    required_scan_styles,
    select_library_cell_keyed,
)
from repro.core.weights import (
    KEEP_WEIGHT,
    RegisterField,
    candidate_weight,
    candidate_weights_batch,
)
from repro.geometry.region import FeasibleRegion, common_region
from repro.library.functional import FunctionalClass, ScanStyle
from repro.library.library import CellLibrary
from repro.scan.model import ScanModel


@dataclass
class CandidateMBR:
    """One valid MBR candidate: a clique plus its mapping and ILP weight.

    Singleton candidates ("keep the register as is") have ``members`` of
    length one, ``mapping=None``, and weight exactly 1 — they guarantee ILP
    feasibility and model the do-nothing choice.
    """

    members: tuple[str, ...]
    bits: int
    weight: float
    blockers: int
    mapping: MappingChoice | None
    region: FeasibleRegion | None

    @property
    def is_singleton(self) -> bool:
        return len(self.members) == 1

    @property
    def is_incomplete(self) -> bool:
        return self.mapping is not None and self.mapping.incomplete


@dataclass(frozen=True, slots=True)
class CandidateConfig:
    """Knobs of candidate enumeration.

    ``allow_incomplete``
        Enable incomplete MBRs (Section 3): cliques whose bit sum matches no
        library width may map to the next larger cell, subject to the
        area-per-bit rule and ``max_incomplete_area_overhead``.
    ``max_incomplete_area_overhead``
        Flow-level cap on the relative area increase an incomplete MBR may
        cost (the paper's experiments use 5%).
    ``max_candidates_per_subgraph``
        Safety valve for pathological dense subgraphs: when exceeded, the
        lightest candidates are kept (plus all singletons).
    ``max_group_spread``
        Maximum half-perimeter (um) of the bounding box of a candidate's
        register centers.  Merging registers that are compatible but far
        apart stretches every data net toward the common MBR location; this
        cap is what keeps total wirelength from growing (the paper reports
        *reduced* wirelength after composition).
    ``multi_scan_weight_penalty``
        Weight multiplier for candidates that can only map to multi-SI/SO
        cells (Section 4.1: external-scan cells "are penalized during MBR
        selection" for their chain-routing cost).  Small scattered merges on
        ordered chains stop paying off; large ones still win.
    ``use_placement_weights``
        Ablation switch: when False, every candidate is weighted ``1/bits``
        with no blocking-register penalty — the "without this, both routing
        congestion and wire-length can significantly increase" configuration
        of Section 3.2.
    """

    allow_incomplete: bool = True
    max_incomplete_area_overhead: float = 0.05
    max_candidates_per_subgraph: int = 4000
    max_group_spread: float = 18.0
    multi_scan_weight_penalty: float = 20.0
    use_placement_weights: bool = True
    window_enumeration_above: int = 12
    """Clique size beyond which sub-clique enumeration switches from the
    exhaustive subset DP to spatially-contiguous windows.  In a dense
    clique, a subset that skips over a nearer register is blocked by it
    (Section 3.2) and a blocked candidate can never beat its members'
    singletons in the ILP — so only spatially contiguous groups are worth
    enumerating; this keeps dense banks (and decomposed MBRs) tractable."""


def _bbox_spread(xmin: float, ymin: float, xmax: float, ymax: float) -> float:
    """Half-perimeter of a center bounding box, quantized for determinism.

    The spread cap is compared against coordinate *differences*, and
    ``(a + t) - (b + t)`` need not equal ``a - b`` in floats — a rigid
    translation of the whole placement could flip a group sitting exactly
    on the cap in or out of the candidate set.  Rounding to 1e-9 um (six
    orders below any real site geometry) makes the comparison a function
    of relative geometry only.
    """
    return round((xmax - xmin) + (ymax - ymin), 9)


class _MappingMemo:
    """Per-enumeration cache of the pure mapping queries.

    The width menu and the cell choice depend on a group only through
    ``(func_class, styles)`` resp. ``(func_class, styles, width, bits,
    min_drive_res)`` — thousands of sub-cliques of one subgraph share a
    handful of such keys, so a dict lookup replaces the library scan.
    """

    __slots__ = ("library", "_widths", "_select")

    def __init__(self, library: CellLibrary) -> None:
        self.library = library
        self._widths: dict[tuple, tuple[int, ...]] = {}
        self._select: dict[tuple, MappingChoice | None] = {}

    def widths(
        self, func_class: FunctionalClass, styles: tuple[ScanStyle, ...]
    ) -> tuple[int, ...]:
        key = (func_class, styles)
        out = self._widths.get(key)
        if out is None:
            out = self.library.widths_for(func_class, scan_styles=styles)
            self._widths[key] = out
        return out

    def select(
        self,
        func_class: FunctionalClass,
        styles: tuple[ScanStyle, ...],
        width: int,
        bits: int,
        min_drive_res: float,
    ) -> MappingChoice | None:
        key = (func_class, styles, width, bits, min_drive_res)
        if key in self._select:
            return self._select[key]
        out = select_library_cell_keyed(
            self.library, func_class, styles, width, bits, min_drive_res
        )
        self._select[key] = out
        return out


def enumerate_candidates(
    subgraph: nx.Graph,
    all_registers: list[RegisterInfo],
    library: CellLibrary,
    scan_model: ScanModel | None = None,
    config: CandidateConfig | None = None,
) -> list[CandidateMBR]:
    """All valid candidate MBRs of one compatibility subgraph.

    For every maximal clique, enumerate the sub-cliques whose bit totals the
    library can host; validate each against the group-level constraints that
    pairwise edges cannot express (common feasible region, scan ordering,
    mapping existence, incomplete-MBR economics); weight with the placement
    polygon.  Singletons for every node are always included.
    """
    config = config or CandidateConfig()
    infos: dict[str, RegisterInfo] = {
        n: subgraph.nodes[n]["info"] for n in subgraph.nodes
    }

    candidates: list[CandidateMBR] = [
        CandidateMBR(
            members=(name,),
            bits=info.bits,
            weight=KEEP_WEIGHT,
            blockers=0,
            mapping=None,
            region=info.region,
        )
        for name, info in sorted(infos.items())
    ]

    seen: set[frozenset[str]] = set()
    pre: list[tuple[list[RegisterInfo], int, MappingChoice, FeasibleRegion]] = []
    bits_of = {n: infos[n].bits for n in infos}
    memo = _MappingMemo(library)
    for clique in enumerate_maximal_cliques(subgraph):
        if len(clique) < 2:
            continue
        members_list = [infos[n] for n in clique]
        widths = memo.widths(
            members_list[0].func_class,
            required_scan_styles(members_list, scan_model),
        )
        if not widths:
            continue
        max_bits = max(widths)
        if len(clique) > config.window_enumeration_above:
            subcliques = _window_subcliques(
                [infos[n] for n in sorted(clique)],
                bits_of,
                set(widths),
                max_bits,
                config.allow_incomplete,
                config.max_group_spread,
            )
        else:
            subcliques = enumerate_subcliques(
                clique,
                bits_of,
                target_bit_sums=set(widths),
                max_bits=max_bits,
                allow_incomplete=config.allow_incomplete,
            )
        for subclique in subcliques:
            if subclique in seen:
                continue
            seen.add(subclique)
            group = _validate_group(
                [infos[n] for n in sorted(subclique)],
                memo,
                scan_model,
                config,
            )
            if group is not None:
                pre.append(group)

    multi = _weigh_groups(pre, all_registers, config)
    # Deterministic candidate order: ILP tie-breaking must not depend on
    # hash-seed-sensitive set iteration.
    multi.sort(key=lambda c: (c.weight, -c.bits, c.members))
    if len(multi) > config.max_candidates_per_subgraph:
        multi = multi[: config.max_candidates_per_subgraph]
    return candidates + multi


def _window_subcliques(
    members: list[RegisterInfo],
    bits_of: dict[str, int],
    target_bit_sums: set[int],
    max_bits: int,
    allow_incomplete: bool,
    max_spread: float = math.inf,
) -> list[frozenset[str]]:
    """Spatially-contiguous sub-cliques of a large clique.

    Members are serpentine-sorted (row, then x alternating); every window
    ``members[i:j]`` whose bit sum the library can host becomes a
    candidate.  O(k^2) candidates instead of exponentially many — see
    ``CandidateConfig.window_enumeration_above`` for why this loses nothing
    the ILP could actually select.

    ``max_spread`` is :attr:`CandidateConfig.max_group_spread`: the centers'
    bounding-box half-perimeter only grows as a window extends, so a window
    that exceeds it ends the run — validation would reject every extension
    with the very same check, just later.
    """

    def serpentine(info: RegisterInfo):
        row = round(info.center_xy[1])
        x = info.center_xy[0] if row % 2 == 0 else -info.center_xy[0]
        return (row, x, info.name)

    ordered = sorted(members, key=serpentine)
    out: list[frozenset[str]] = []
    k = len(ordered)
    for i in range(k):
        total = 0
        xmin, ymin = math.inf, math.inf
        xmax, ymax = -math.inf, -math.inf
        for j in range(i, k):
            info = ordered[j]
            x, y = info.center_xy
            xmin, xmax = min(xmin, x), max(xmax, x)
            ymin, ymax = min(ymin, y), max(ymax, y)
            if _bbox_spread(xmin, ymin, xmax, ymax) > max_spread:
                break
            total += bits_of[info.name]
            if total > max_bits:
                break
            if j == i:
                continue  # singletons handled separately
            exact = total in target_bit_sums
            incomplete_ok = allow_incomplete and any(w > total for w in target_bit_sums)
            if exact or incomplete_ok:
                out.append(frozenset(m.name for m in ordered[i : j + 1]))
    return out


def _validate_group(
    members: list[RegisterInfo],
    memo: _MappingMemo,
    scan_model: ScanModel | None,
    config: CandidateConfig,
) -> tuple[list[RegisterInfo], int, MappingChoice, FeasibleRegion] | None:
    """Group-level validation of one sub-clique (everything but the weight).

    The checks are pure filters, ordered cheapest-first — spread on cached
    centers, then the memoized width menu, then region intersection, then
    cell selection — reordering them cannot change which candidates survive.
    Returns ``(members, bits, mapping choice, region)``; the placement
    weight is attached afterwards by :func:`_weigh_groups`, batched over
    every surviving group of the subgraph.
    """
    xs = [m.center_xy[0] for m in members]
    ys = [m.center_xy[1] for m in members]
    if _bbox_spread(min(xs), min(ys), max(xs), max(ys)) > config.max_group_spread:
        return None

    bits = sum(m.bits for m in members)
    func_class = members[0].func_class
    styles = required_scan_styles(members, scan_model)
    widths = memo.widths(func_class, styles)
    fitting = [w for w in widths if w >= bits]
    if not fitting:
        return None
    width = min(fitting)

    region = common_region([m.region for m in members])
    if region is None:
        return None

    min_drive_res = min(m.cell.register_cell.drive_resistance for m in members)
    choice = memo.select(func_class, styles, width, bits, min_drive_res)
    if choice is None:
        return None
    if choice.incomplete:
        if not config.allow_incomplete:
            return None
        if not incomplete_area_acceptable(choice, members):
            return None
        if area_overhead_fraction(choice, members) > config.max_incomplete_area_overhead:
            return None
    return members, bits, choice, region


def _weigh_groups(
    pre: list[tuple[list[RegisterInfo], int, MappingChoice, FeasibleRegion]],
    all_registers: list[RegisterInfo] | RegisterField,
    config: CandidateConfig,
) -> list[CandidateMBR]:
    """Placement-weigh validated groups and build their candidates.

    Weights for all groups of the subgraph are computed in one batched
    field pass (saturated blocker counts — identical decisions to the
    per-group calls); infinite-weight groups are dropped here, exactly as
    the inline check used to.
    """
    if not pre:
        return []
    if not config.use_placement_weights:
        pairs = [(1.0 / bits, 0) for _, bits, _, _ in pre]  # ablation
    elif isinstance(all_registers, RegisterField):
        pairs = candidate_weights_batch(
            all_registers,
            [members for members, _, _, _ in pre],
            [bits for _, bits, _, _ in pre],
        )
    else:
        pairs = [
            candidate_weight(members, all_registers, mapped_bits=bits, saturate=True)
            for members, bits, _, _ in pre
        ]
    out: list[CandidateMBR] = []
    for (members, bits, choice, region), (weight, blockers) in zip(pre, pairs):
        if weight == float("inf"):
            continue  # n >= b: hopeless, drop before the ILP sees it
        if choice.cell.scan_style is ScanStyle.MULTI:
            weight *= config.multi_scan_weight_penalty
        out.append(
            CandidateMBR(
                members=tuple(m.name for m in members),
                bits=bits,
                weight=weight,
                blockers=blockers,
                mapping=choice,
                region=region,
            )
        )
    return out
