"""Collecting the Table 1 metric set from a design."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clocktree.cts import synthesize_clock_tree
from repro.congestion.grid import CongestionGrid
from repro.core.compatibility import CompatibilityConfig, analyze_registers
from repro.netlist.design import Design
from repro.scan.model import ScanModel
from repro.sta.timer import Timer


@dataclass
class DesignMetrics:
    """One row ('Base' or 'Ours') of the paper's Table 1."""

    area: float = 0.0
    total_cells: int = 0
    total_regs: int = 0
    comp_regs: int = 0
    clk_bufs: int = 0
    clk_cap: float = 0.0
    tns: float = 0.0
    wns: float = 0.0
    failing_endpoints: int = 0
    total_endpoints: int = 0
    overflow_edges: int = 0
    wirelength_clk: float = 0.0
    wirelength_other: float = 0.0
    width_histogram: dict[int, int] = field(default_factory=dict)
    exec_time_s: float = 0.0

    @property
    def wirelength_total(self) -> float:
        return self.wirelength_clk + self.wirelength_other

    def as_counters(self) -> dict[str, int | float]:
        """The headline numbers as stage-trace counters (see
        :class:`repro.engine.StageTrace`).  Integer quantities stay ints so
        the trace renders them without a spurious decimal point."""
        return {
            "cells": self.total_cells,
            "registers": self.total_regs,
            "composable": self.comp_regs,
            "clk_bufs": self.clk_bufs,
        }


def collect_metrics(
    design: Design,
    timer: Timer,
    scan_model: ScanModel | None = None,
    compatibility: CompatibilityConfig | None = None,
    cts_max_fanout: int = 16,
    congestion_bins: int = 24,
    tracks_per_um: float = 8.0,
) -> DesignMetrics:
    """Measure a design: area/cells/registers, clock tree cost (via a fresh
    CTS-lite run), timing QoR, overflow edges, and split wirelength.

    ``comp_regs`` counts the registers the composition engine would consider
    composable — before composition this matches Table 1's 'Comp-Regs';
    after composition it shows what head-room remains.
    """
    m = DesignMetrics()
    m.area = design.total_cell_area()
    m.total_cells = len(design.cells)
    m.total_regs = design.total_register_count()
    m.width_histogram = design.width_histogram()

    infos = analyze_registers(design, timer, scan_model, compatibility)
    m.comp_regs = sum(1 for i in infos.values() if i.composable)

    tree = synthesize_clock_tree(design, max_fanout=cts_max_fanout)
    m.clk_bufs = tree.report.num_buffers
    m.clk_cap = tree.report.capacitance

    summary = timer.summary()
    m.tns = summary.tns
    m.wns = summary.wns
    m.failing_endpoints = summary.failing_endpoints
    m.total_endpoints = summary.total_endpoints

    grid = CongestionGrid.of_design(
        design, bins_x=congestion_bins, bins_y=congestion_bins, tracks_per_um=tracks_per_um
    )
    m.overflow_edges = grid.report().overflow_edges

    # The virtual clock tree's wiring counts toward clock wirelength, since
    # the netlist's own clock nets are logical (pre-CTS).
    m.wirelength_clk = tree.report.wirelength
    _, m.wirelength_other = design.hpwl_split()
    return m


def compare_metrics(base: DesignMetrics, ours: DesignMetrics) -> dict[str, float]:
    """Relative changes (ours vs base), positive = reduction, as in the
    'Save' rows of Table 1."""

    def save(b: float, o: float) -> float:
        return (b - o) / b if b else 0.0

    return {
        "area": save(base.area, ours.area),
        "total_cells": save(base.total_cells, ours.total_cells),
        "total_regs": save(base.total_regs, ours.total_regs),
        "comp_regs": save(base.comp_regs, ours.comp_regs),
        "clk_bufs": save(base.clk_bufs, ours.clk_bufs),
        "clk_cap": save(base.clk_cap, ours.clk_cap),
        "tns": save(abs(base.tns), abs(ours.tns)),
        "failing_endpoints": save(base.failing_endpoints, ours.failing_endpoints),
        "overflow_edges": save(base.overflow_edges, ours.overflow_edges),
        "wirelength_clk": save(base.wirelength_clk, ours.wirelength_clk),
        "wirelength_other": save(base.wirelength_other, ours.wirelength_other),
        "wirelength_total": save(base.wirelength_total, ours.wirelength_total),
    }
