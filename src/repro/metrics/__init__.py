"""Design metrics collection — the columns of the paper's Table 1."""

from repro.metrics.collect import DesignMetrics, collect_metrics, compare_metrics

__all__ = ["DesignMetrics", "collect_metrics", "compare_metrics"]
