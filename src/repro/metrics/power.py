"""Power estimation — the objective MBR composition actually serves.

The paper motivates MBR composition by clock power: "clock power can
contribute 20% to 40% of the dynamic power consumption", and dynamic power
is ``0.5 f C V^2`` per (dis)charged capacitance.  This module estimates:

* **clock dynamic power** — the clock network switches every cycle (activity
  1.0 by definition): wire + clock-pin + buffer capacitance from CTS-lite
  times ``f * V^2`` (the 0.5 cancels because the clock toggles twice per
  cycle);
* **data dynamic power** — net and input-pin capacitance switched at a
  data activity factor;
* **leakage** — summed from the library's per-cell leakage.

Absolute watts depend on the schematic library values; the before/after
*ratio* is the quantity the paper's flow optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocktree.cts import synthesize_clock_tree
from repro.netlist.design import Design


@dataclass(frozen=True, slots=True)
class PowerReport:
    """Estimated power in milliwatts (clock, data, leakage, total)."""

    clock_dynamic_mw: float
    data_dynamic_mw: float
    leakage_mw: float

    @property
    def total_mw(self) -> float:
        return self.clock_dynamic_mw + self.data_dynamic_mw + self.leakage_mw

    @property
    def clock_fraction(self) -> float:
        """Share of total power spent in the clock network — the paper cites
        20-40% for synchronous designs."""
        total = self.total_mw
        return self.clock_dynamic_mw / total if total else 0.0


def estimate_power(
    design: Design,
    clock_period_ns: float,
    vdd: float = 0.9,
    data_activity: float = 0.15,
    cts_max_fanout: int = 16,
) -> PowerReport:
    """Estimate the design's power at the given clock period.

    ``data_activity`` is the average toggle rate of data nets relative to
    the clock (a typical 10-20% for control-dominated logic).  The clock
    network's capacitance comes from a fresh CTS-lite run, so the estimate
    reflects exactly the clock tree the Table 1 metrics report.
    """
    if clock_period_ns <= 0:
        raise ValueError("clock period must be positive")
    freq_hz = 1e9 / clock_period_ns
    tech = design.library.technology

    tree = synthesize_clock_tree(design, max_fanout=cts_max_fanout)
    # pF * V^2 * Hz = 1e-12 W; clock toggles twice per period -> factor 1.
    clock_w = tree.report.capacitance * 1e-12 * vdd * vdd * freq_hz

    data_cap = 0.0
    for net in design.nets.values():
        if net.is_clock:
            continue
        data_cap += net.sink_cap() + tech.wire_cap_per_um * net.hpwl()
    data_w = 0.5 * data_cap * 1e-12 * vdd * vdd * freq_hz * data_activity

    leakage_w = sum(c.libcell.leakage for c in design.cells.values()) * 1e-9

    return PowerReport(
        clock_dynamic_mw=clock_w * 1e3,
        data_dynamic_mw=data_w * 1e3,
        leakage_mw=leakage_w * 1e3,
    )
