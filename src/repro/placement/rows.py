"""Placement rows and site grid."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class PlacementRows:
    """A uniform row/site grid covering the die core.

    Standard cells snap to row ``y`` coordinates and site ``x`` boundaries.
    """

    core: Rect
    row_height: float
    site_width: float

    def __post_init__(self) -> None:
        if self.row_height <= 0 or self.site_width <= 0:
            raise ValueError("row height and site width must be positive")

    @property
    def num_rows(self) -> int:
        return max(0, int(self.core.height / self.row_height))

    @property
    def sites_per_row(self) -> int:
        return max(0, int(self.core.width / self.site_width))

    def row_y(self, row: int) -> float:
        """The y coordinate of a row's bottom edge."""
        if not 0 <= row < self.num_rows:
            raise IndexError(f"row {row} out of range 0..{self.num_rows - 1}")
        return self.core.ylo + row * self.row_height

    def nearest_row(self, y: float) -> int:
        """The row whose bottom edge is nearest ``y`` (clamped to the core)."""
        if self.num_rows == 0:
            raise ValueError("grid has no rows")
        row = round((y - self.core.ylo) / self.row_height)
        return min(max(int(row), 0), self.num_rows - 1)

    def snap_x(self, x: float) -> float:
        """Snap an x coordinate to the nearest site boundary inside the core."""
        site = round((x - self.core.xlo) / self.site_width)
        site = min(max(site, 0), self.sites_per_row)
        return self.core.xlo + site * self.site_width

    def snap(self, p: Point) -> Point:
        """Snap a point to the legal grid (site boundary, row bottom)."""
        return Point(self.snap_x(p.x), self.row_y(self.nearest_row(p.y)))

    def sites_for_width(self, width: float) -> int:
        """Number of sites a cell of the given width occupies."""
        import math

        return max(1, math.ceil(width / self.site_width - 1e-9))
