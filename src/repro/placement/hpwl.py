"""Half-perimeter wire-length measurement."""

from __future__ import annotations

from repro.netlist.db import Net
from repro.netlist.design import Design


def net_hpwl(net: Net) -> float:
    """HPWL of one net (0 for nets with fewer than two terminals)."""
    return net.hpwl()


def design_hpwl(design: Design, clock_only: bool | None = None) -> float:
    """Total HPWL of a design.

    ``clock_only=True`` sums only clock nets, ``False`` only non-clock nets,
    ``None`` everything — matching Table 1's split of wirelength into 'Clk'
    and 'Other' columns.
    """
    total = 0.0
    for net in design.nets.values():
        if clock_only is True and not net.is_clock:
            continue
        if clock_only is False and net.is_clock:
            continue
        total += net.hpwl()
    return total


def hpwl_of_nets(nets: list[Net]) -> float:
    """Sum of HPWL over an explicit net list (used for before/after deltas
    of the nets touched by one composition)."""
    return sum(n.hpwl() for n in nets)
