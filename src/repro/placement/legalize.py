"""Tetris-style row legalization.

The composition flow places each new MBR at its LP-optimal location
(Section 4.2), which may overlap other cells; this legalizer snaps cells to
rows/sites and resolves overlaps with minimal displacement.  It supports the
*incremental* usage the paper relies on: legalize only the new MBRs (and any
cells they displace) while everything else acts as fixed obstacles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.gridindex import RowIntervals
from repro.geometry.point import Point
from repro.netlist.db import Cell
from repro.netlist.design import Design
from repro.placement.rows import PlacementRows


@dataclass
class LegalizeResult:
    """Outcome of a legalization pass."""

    moved: dict[str, tuple[Point, Point]] = field(default_factory=dict)
    failed: list[str] = field(default_factory=list)

    @property
    def total_displacement(self) -> float:
        return sum(a.manhattan_to(b) for a, b in self.moved.values())

    @property
    def max_displacement(self) -> float:
        return max((a.manhattan_to(b) for a, b in self.moved.values()), default=0.0)

    @property
    def num_moved(self) -> int:
        return sum(1 for a, b in self.moved.values() if a != b)

    @property
    def ok(self) -> bool:
        return not self.failed


def legalize(
    design: Design,
    rows: PlacementRows,
    movable: list[Cell] | None = None,
    max_displacement: float | None = None,
    obstacles: list[Cell] | None = None,
) -> LegalizeResult:
    """Legalize ``movable`` cells (default: all non-fixed cells) onto rows.

    Cells outside ``movable`` — and all ``fixed`` cells — are obstacles.
    Passing ``obstacles`` overrides that default with an explicit obstacle
    set (the generator's register-first pass uses it to legalize registers
    on a canvas where unplaced combinational cells don't block).  Movable
    cells are processed in decreasing width (big MBRs first, since they are
    hardest to seat; the paper notes registers "are larger and often have
    higher placement priority").  Each cell lands at the free location
    nearest its current position; cells that cannot be seated within
    ``max_displacement`` (when given) are reported in ``failed``.
    """
    result = LegalizeResult()
    spaces = [RowIntervals() for _ in range(rows.num_rows)]
    movable_set = (
        {c.name for c in movable if not c.fixed}
        if movable is not None
        else {c.name for c in design.cells.values() if not c.fixed}
    )

    if obstacles is not None:
        for cell in obstacles:
            if cell.name not in movable_set:
                _occupy_cell(spaces, rows, cell)
    else:
        for cell in design.cells.values():
            if cell.name not in movable_set:
                _occupy_cell(spaces, rows, cell)

    order = sorted(
        (design.cells[name] for name in movable_set),
        key=lambda c: (-c.libcell.width, c.name),
    )
    for cell in order:
        target = _seat(spaces, rows, cell, max_displacement)
        if target is None:
            result.failed.append(cell.name)
            _occupy_cell(spaces, rows, cell)  # stays put, still blocks others
            continue
        old = cell.origin
        design.move_cell(cell, target)
        _occupy_cell(spaces, rows, cell)
        result.moved[cell.name] = (old, target)
    return result


def _occupy_cell(spaces: list[RowIntervals], rows: PlacementRows, cell: Cell) -> None:
    """Mark a cell's sites as occupied in every row it touches."""
    fp = cell.footprint
    lo_site = int((fp.xlo - rows.core.xlo) / rows.site_width)
    hi_site = max(lo_site + 1, int(-(-(fp.xhi - rows.core.xlo) // rows.site_width)))
    r0 = max(0, int((fp.ylo - rows.core.ylo) / rows.row_height))
    r1 = min(rows.num_rows - 1, int((fp.yhi - rows.core.ylo - 1e-9) / rows.row_height))
    for r in range(r0, r1 + 1):
        spaces[r].occupy(max(lo_site, 0), min(hi_site, rows.sites_per_row))


def _seat(
    spaces: list[RowIntervals],
    rows: PlacementRows,
    cell: Cell,
    max_displacement: float | None,
) -> Point | None:
    """Best legal origin for ``cell`` near its current origin."""
    width_sites = rows.sites_for_width(cell.libcell.width)
    desired_site = int(round((cell.origin.x - rows.core.xlo) / rows.site_width))
    desired_row = rows.nearest_row(cell.origin.y)

    best: tuple[float, Point] | None = None
    for delta in range(rows.num_rows):
        candidates = {desired_row - delta, desired_row + delta}
        row_cost = delta * rows.row_height
        if best is not None and row_cost >= best[0]:
            break
        if max_displacement is not None and row_cost > max_displacement:
            break
        for r in candidates:
            if not 0 <= r < rows.num_rows:
                continue
            site = spaces[r].nearest_gap(desired_site, width_sites, rows.sites_per_row)
            if site is None:
                continue
            x = rows.core.xlo + site * rows.site_width
            y = rows.row_y(r)
            cost = abs(x - cell.origin.x) + abs(y - cell.origin.y)
            if max_displacement is not None and cost > max_displacement:
                continue
            if best is None or cost < best[0]:
                best = (cost, Point(x, y))
    return best[1] if best is not None else None
