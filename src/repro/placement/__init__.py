"""Placement substrate: rows, wire-length, density, and legalization.

The composition flow runs *after* global or detailed placement and must be
able to (a) measure wire length, (b) legalize the new MBR cells onto rows
without overlaps, and (c) quantify placement disturbance (displacement of
other cells) — the quantities the paper's weighting heuristic is designed to
keep small.
"""

from repro.placement.rows import PlacementRows
from repro.placement.hpwl import design_hpwl, net_hpwl
from repro.placement.density import DensityMap
from repro.placement.legalize import LegalizeResult, legalize

__all__ = [
    "PlacementRows",
    "design_hpwl",
    "net_hpwl",
    "DensityMap",
    "LegalizeResult",
    "legalize",
]
