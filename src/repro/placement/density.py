"""Placement density map over a uniform bin grid."""

from __future__ import annotations

import numpy as np

from repro.geometry.rect import Rect
from repro.netlist.design import Design


class DensityMap:
    """Cell-area utilization per bin of a uniform grid over the core.

    Used by the legalizer to find room for new MBRs and by tests/benchmarks
    to show composition does not create density hotspots.
    """

    def __init__(self, core: Rect, bins_x: int = 32, bins_y: int = 32) -> None:
        if bins_x <= 0 or bins_y <= 0:
            raise ValueError("bin counts must be positive")
        self.core = core
        self.bins_x = bins_x
        self.bins_y = bins_y
        self.bin_w = core.width / bins_x
        self.bin_h = core.height / bins_y
        self.area = np.zeros((bins_x, bins_y), dtype=float)

    @staticmethod
    def of_design(design: Design, bins_x: int = 32, bins_y: int = 32) -> "DensityMap":
        dm = DensityMap(design.die, bins_x, bins_y)
        for cell in design.cells.values():
            dm.add_rect(cell.footprint)
        return dm

    def _bin_range(self, lo: float, hi: float, origin: float, size: float, n: int):
        b0 = int(np.floor((lo - origin) / size))
        b1 = int(np.ceil((hi - origin) / size))
        return max(b0, 0), min(b1, n)

    def add_rect(self, rect: Rect, sign: float = 1.0) -> None:
        """Accumulate a rectangle's area into overlapping bins
        (``sign=-1`` removes it, e.g. when a register is deleted)."""
        x0, x1 = self._bin_range(rect.xlo, rect.xhi, self.core.xlo, self.bin_w, self.bins_x)
        y0, y1 = self._bin_range(rect.ylo, rect.yhi, self.core.ylo, self.bin_h, self.bins_y)
        for bx in range(x0, x1):
            for by in range(y0, y1):
                bin_rect = Rect(
                    self.core.xlo + bx * self.bin_w,
                    self.core.ylo + by * self.bin_h,
                    self.core.xlo + (bx + 1) * self.bin_w,
                    self.core.ylo + (by + 1) * self.bin_h,
                )
                overlap = bin_rect.intersect(rect)
                if overlap is not None:
                    self.area[bx, by] += sign * overlap.area

    def utilization(self) -> np.ndarray:
        """Per-bin utilization in [0, ~1+] (cell area / bin area)."""
        return self.area / (self.bin_w * self.bin_h)

    @property
    def max_utilization(self) -> float:
        return float(self.utilization().max(initial=0.0))

    @property
    def mean_utilization(self) -> float:
        return float(self.utilization().mean()) if self.area.size else 0.0

    def overfull_bins(self, limit: float = 1.0) -> int:
        """Number of bins whose utilization exceeds ``limit``."""
        return int((self.utilization() > limit).sum())
