"""The metrics registry: counters, gauges, fixed-bucket histograms.

One process-wide :class:`MetricsRegistry` replaces the scattered counter
dicts that PRs 1–3 grew: ILP backends report branch-and-bound nodes
explored/pruned, simplex pivots, and LP relaxation gaps; the composition
cache reports digest hits/misses/evictions; the incremental timer folds
its :class:`~repro.sta.timer.TimerStats` in.  The registry is cheap
enough to stay always-on (a dict lookup and an integer add per event —
hot loops accumulate locally and report once per call), deterministic
(histogram buckets are fixed at creation, so two identical runs produce
identical snapshots modulo wall-clock), and mergeable (worker processes
return :meth:`MetricsRegistry.snapshot` payloads that the parent
:meth:`MetricsRegistry.merge` s back in).
"""

from __future__ import annotations

import bisect
import threading
from typing import Sequence

#: Default histogram buckets for event-count distributions (B&B nodes per
#: solve, retimed nodes per pass, ...): upper bounds, log-ish spaced.
COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000, 10000, 50000,
)

#: Default buckets for fractions in [0, 1] (relaxation gaps, dirty-cone
#: fractions).
FRACTION_BUCKETS: tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0,
)


class Counter:
    """A monotonically increasing value (int-preserving: stays ``int``
    until a float is added)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value


class Histogram:
    """A fixed-bucket histogram.

    ``buckets`` are upper bounds (ascending); observations above the last
    bound land in the overflow slot.  Fixed buckets keep snapshots
    deterministic — the same run always yields the same counts.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total")

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram buckets must be strictly ascending: {buckets}")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow slot
        self.count = 0
        self.total: int | float = 0

    def observe(self, value: int | float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value

    def as_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """Create-or-get registry of named metrics.

    Thread-safe for metric *creation*; individual updates are plain
    attribute writes (the GIL makes the integer adds atomic enough for
    profiling counters, and hot paths batch locally anyway).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def histogram(
        self, name: str, buckets: Sequence[float] = COUNT_BUCKETS
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram(name, buckets))
        return h

    # -- snapshots & merging ------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-data view of every metric (JSON-ready, picklable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (typically from a worker process) into this
        registry: counters and histogram slots add, gauges last-write-win."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            h = self.histogram(name, data["buckets"])
            if tuple(float(b) for b in data["buckets"]) != h.buckets:
                raise ValueError(
                    f"histogram {name!r}: bucket mismatch on merge "
                    f"({data['buckets']} vs {list(h.buckets)})"
                )
            for i, c in enumerate(data["counts"]):
                h.counts[i] += c
            h.count += data["count"]
            h.total += data["sum"]

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# -- module-level current registry ------------------------------------------

_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide registry; returns the
    previous one (restore it in a ``finally``)."""
    global _registry
    prev = _registry
    _registry = registry
    return prev
