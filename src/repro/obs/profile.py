"""Performance intelligence: sampling profiler, resource timelines,
progress heartbeats.

Three always-optional signals on top of the span tracer, all costing
nothing when not installed (every hook site is a module-global load and
a ``None`` test):

* :class:`Profiler` — a background-thread **wall-clock sampler** that
  attributes each sample to the current :func:`repro.obs.span` stack of
  every live thread (via :meth:`Tracer.active_stacks
  <repro.obs.trace.Tracer.active_stacks>`), accumulating collapsed-stack
  ("folded") counts loadable by any flamegraph tool
  (``flamegraph.pl``, speedscope, inferno).  Worker processes cannot be
  sampled from the parent, so their contribution rides the existing
  :meth:`Tracer.adopt <repro.obs.trace.Tracer.adopt>` merge path:
  :meth:`Profiler.ingest_spans` converts adopted worker span records
  into samples (per-span self time quantized to the sampling interval,
  floored at one sample so short solves stay visible), prefixed with the
  parent stack at the fan-out site.  Enabled via ``repro run --profile
  out.folded`` or ``REPRO_PROFILE=1`` (or ``REPRO_PROFILE=path``).
* :class:`ResourceSampler` — a coarse (default 250 ms) sampler of the
  process's RSS and CPU utilization: each tick updates the
  ``proc.rss_bytes`` / ``proc.rss_peak_bytes`` / ``proc.cpu_percent``
  gauges in the metrics registry and appends to an in-memory timeline
  the run manifest archives, so a long ``huge``-preset run leaves a
  memory/CPU-over-time record next to its span roll-up.
* :class:`Heartbeat` — periodic **progress events** for long runs: the
  pipeline reports stage starts/finishes, stages report work progress
  (subproblems solved, dirty registers), and a ticker thread emits one
  event per interval carrying the current stage, elapsed time, work
  done/total, and an ETA estimated from :class:`StageTrace
  <repro.engine.stage.StageTrace>` history (earlier executions of the
  same stages — a second composition pass predicts from the first).
  Events go to the structured log, optionally to a stream
  (``--progress`` / ``REPRO_PROGRESS=1``), and into the manifest.
"""

from __future__ import annotations

import os
import sys
import threading
import time

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import SpanRecord, Tracer, get_tracer

PROFILE_ENV = "REPRO_PROFILE"
PROGRESS_ENV = "REPRO_PROGRESS"

#: Default wall-clock sampling period.  2 ms resolves a 100 ms stage
#: into ~50 samples while keeping the sampler thread's own CPU share
#: well under 1%.
DEFAULT_PROFILE_INTERVAL_S = 0.002

DEFAULT_RESOURCE_INTERVAL_S = 0.25
DEFAULT_HEARTBEAT_INTERVAL_S = 5.0

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def default_profile_path() -> str:
    """Where ``REPRO_PROFILE=1`` writes when no path was given."""
    value = os.environ.get(PROFILE_ENV, "")
    if value not in ("", "0", "1"):
        return value
    return "repro_profile.folded"


def profile_env_enabled() -> bool:
    return os.environ.get(PROFILE_ENV, "") not in ("", "0")


def progress_env_enabled() -> bool:
    return os.environ.get(PROGRESS_ENV, "") not in ("", "0")


class Profiler:
    """Wall-clock sampling profiler over the span tracer's live stacks.

    ``start()`` launches a daemon thread that, every ``interval_s``,
    snapshots each thread's open-span stack and increments that stack's
    sample count.  ``folded()`` renders the counts in collapsed-stack
    format (``frame;frame;frame count`` per line).  Samples taken while
    no span is open are counted separately (``idle_samples``) so the
    flamegraph's total width reflects attributed time only.

    The profiler never samples Python frames — span stacks are the unit
    of attribution, which keeps sampling O(open spans) and makes worker
    merging exact (worker span records carry the same names).
    """

    def __init__(
        self,
        tracer: Tracer | None = None,
        interval_s: float = DEFAULT_PROFILE_INTERVAL_S,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.tracer = tracer if tracer is not None else get_tracer()
        if self.tracer is None or not self.tracer.enabled:
            raise ValueError("Profiler requires an enabled tracer")
        self.interval_s = interval_s
        self.samples: dict[tuple[str, ...], int] = {}
        self.idle_samples = 0
        self.total_samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._own_tid: int | None = None

    # -- sampling -----------------------------------------------------------

    def start(self) -> "Profiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def _run(self) -> None:
        self._own_tid = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    def sample_once(self) -> None:
        """Take one sample of every live thread's span stack."""
        stacks = self.tracer.active_stacks()
        with self._lock:
            for tid, names in stacks.items():
                if tid == self._own_tid:
                    continue
                self.total_samples += 1
                if names:
                    self.samples[names] = self.samples.get(names, 0) + 1
                else:
                    self.idle_samples += 1

    # -- merging ------------------------------------------------------------

    def merge_folded(
        self, folded: dict[tuple[str, ...], int], prefix: tuple[str, ...] = ()
    ) -> None:
        """Fold another profiler's samples in, nesting under ``prefix``."""
        with self._lock:
            for names, count in folded.items():
                key = prefix + tuple(names)
                self.samples[key] = self.samples.get(key, 0) + count
                self.total_samples += count

    def ingest_spans(
        self, records: list[SpanRecord], prefix: tuple[str, ...] = ()
    ) -> None:
        """Attribute adopted worker spans as samples.

        Worker processes run in their own address space, so the parent's
        sampler thread never sees them; their span records — the same
        payload :meth:`Tracer.adopt` merges — are converted here instead.
        Each span's *self* time (duration minus child durations) becomes
        ``round(self_time / interval)`` samples on its stack path,
        floored at one sample per span so sub-interval solves remain
        visible rather than vanishing (a deliberate, documented bias
        toward completeness over width-exactness for tiny frames).
        """
        if not records:
            return
        by_id = {r.id: r for r in records}
        child_us: dict[int, float] = {}
        for rec in records:
            if rec.parent_id in by_id:
                child_us[rec.parent_id] = child_us.get(rec.parent_id, 0.0) + rec.dur_us

        def path(rec: SpanRecord) -> tuple[str, ...]:
            names: list[str] = []
            cur: SpanRecord | None = rec
            while cur is not None:
                names.append(cur.name)
                cur = by_id.get(cur.parent_id)
            return tuple(reversed(names))

        interval_us = self.interval_s * 1e6
        folded: dict[tuple[str, ...], int] = {}
        for rec in records:
            self_us = rec.dur_us - child_us.get(rec.id, 0.0)
            if self_us <= 0:
                continue
            count = max(1, round(self_us / interval_us))
            key = path(rec)
            folded[key] = folded.get(key, 0) + count
        self.merge_folded(folded, prefix=prefix)

    # -- output -------------------------------------------------------------

    def folded_counts(self) -> dict[tuple[str, ...], int]:
        with self._lock:
            return dict(self.samples)

    def folded(self) -> str:
        """Collapsed-stack text: one ``a;b;c count`` line per stack."""
        with self._lock:
            items = sorted(self.samples.items())
        return "".join(f"{';'.join(names)} {count}\n" for names, count in items)

    def write_folded(self, path: str) -> int:
        """Write the folded profile; returns the number of stack lines."""
        text = self.folded()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return len(text.splitlines())


class ResourceSampler:
    """Periodic RSS/CPU sampler feeding the metrics registry a timeline.

    Each tick reads the process's resident set (``/proc/self/statm``;
    falls back to ``resource.getrusage`` peak-RSS where /proc is
    unavailable) and the CPU utilization since the previous tick
    (``os.times`` user+system delta over wall delta — >100% means
    worker threads), updates the ``proc.*`` gauges, and appends one
    point to :attr:`timeline`.  The run manifest archives the timeline
    under its ``resources`` section.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_RESOURCE_INTERVAL_S,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.interval_s = interval_s
        self._registry = registry
        self.timeline: list[dict] = []
        self.peak_rss_bytes = 0
        self._t0 = time.monotonic()
        self._last_cpu = self._cpu_seconds()
        self._last_wall = self._t0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @staticmethod
    def _cpu_seconds() -> float:
        t = os.times()
        return t.user + t.system

    @staticmethod
    def read_rss_bytes() -> int:
        """Current resident set size in bytes (0 when unreadable)."""
        try:
            with open("/proc/self/statm", "rb") as fh:
                return int(fh.read().split()[1]) * _PAGE_SIZE
        except (OSError, IndexError, ValueError):
            try:
                import resource

                # ru_maxrss is the *peak*, in KiB on Linux — a usable
                # upper bound where /proc is missing (e.g. macOS: bytes).
                peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                return peak * 1024 if sys.platform != "darwin" else peak
            except Exception:
                return 0

    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            raise RuntimeError("resource sampler already started")
        self._stop.clear()
        self.sample_once()
        self._thread = threading.Thread(
            target=self._run, name="repro-resources", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.sample_once()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    def sample_once(self) -> dict:
        """Take one sample; updates gauges and returns the timeline point."""
        now = time.monotonic()
        rss = self.read_rss_bytes()
        cpu = self._cpu_seconds()
        wall_delta = now - self._last_wall
        cpu_percent = (
            100.0 * (cpu - self._last_cpu) / wall_delta if wall_delta > 1e-6 else 0.0
        )
        self._last_cpu, self._last_wall = cpu, now
        point = {
            "t_s": round(now - self._t0, 3),
            "rss_bytes": rss,
            "cpu_percent": round(cpu_percent, 1),
        }
        with self._lock:
            self.timeline.append(point)
            self.peak_rss_bytes = max(self.peak_rss_bytes, rss)
        reg = self.registry
        reg.gauge("proc.rss_bytes").set(rss)
        reg.gauge("proc.rss_peak_bytes").set(self.peak_rss_bytes)
        reg.gauge("proc.cpu_percent").set(point["cpu_percent"])
        return point

    def as_dict(self) -> dict:
        """The manifest's ``resources`` section."""
        with self._lock:
            timeline = list(self.timeline)
        return {
            "interval_s": self.interval_s,
            "peak_rss_bytes": self.peak_rss_bytes,
            "samples": len(timeline),
            "timeline": timeline,
        }


class Heartbeat:
    """Progress events for long runs: stage transitions + periodic beats.

    The pipeline drives :meth:`run_started` / :meth:`stage_started` /
    :meth:`stage_finished`; work loops call :meth:`advance` (monotonic
    done/total within the current stage) and :meth:`update` (freeform
    context fields such as ``dirty_registers``).  A ticker thread emits
    one ``heartbeat`` event per ``interval_s`` while work is running.

    ETA: finished stages record their durations into :attr:`history`
    (seedable from a prior run's ``StageTrace.aggregated()``); the
    estimate is the historical time of the not-yet-run stages plus the
    remainder of the current stage — scaled by done/total when the stage
    reports work progress, else by its own history.  Stages with no
    history contribute nothing (the ETA is a floor, never a guess).
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        history: dict[str, float] | None = None,
        stream=None,
        emit=None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.interval_s = interval_s
        self.history: dict[str, float] = dict(history or {})
        self.stream = stream
        self._emit_fn = emit
        self.events: list[dict] = []
        self._lock = threading.Lock()
        self._t0 = time.monotonic()
        self._planned: list[str] = []
        self._stage: str | None = None
        self._stage_t0 = 0.0
        self._done: int | float | None = None
        self._total: int | float | None = None
        self._unit = "items"
        self._context: dict = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Heartbeat":
        if self._thread is not None:
            raise RuntimeError("heartbeat already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.beat()

    # -- pipeline hooks -----------------------------------------------------

    def run_started(self, stage_names: list[str]) -> None:
        with self._lock:
            self._planned = list(stage_names)

    def stage_started(self, name: str) -> None:
        with self._lock:
            self._stage = name
            self._stage_t0 = time.monotonic()
            self._done = self._total = None
            self._unit = "items"
        self._record(
            {"event": "stage_started", "stage": name, "eta_s": self.eta_s()}
        )

    def stage_finished(self, name: str, seconds: float) -> None:
        with self._lock:
            self.history[name] = seconds
            if self._stage == name:
                self._stage = None
                self._done = self._total = None
        self._record(
            {
                "event": "stage_finished",
                "stage": name,
                "seconds": round(seconds, 6),
                "eta_s": self.eta_s(),
            }
        )

    # -- work-loop hooks ----------------------------------------------------

    def advance(
        self,
        done: int | float,
        total: int | float | None = None,
        unit: str = "items",
    ) -> None:
        """Report work progress inside the current stage (monotonic)."""
        with self._lock:
            self._done = done
            if total is not None:
                self._total = total
            self._unit = unit

    def update(self, **fields) -> None:
        """Merge context fields into every subsequent beat (e.g.
        ``dirty_registers=412``)."""
        with self._lock:
            self._context.update(fields)

    # -- emission -----------------------------------------------------------

    def eta_s(self) -> float | None:
        """Estimated seconds to finish the planned stages (None: no data)."""
        with self._lock:
            stage = self._stage
            planned = self._planned
            history = self.history
            done, total = self._done, self._total
            stage_elapsed = (
                time.monotonic() - self._stage_t0 if stage is not None else 0.0
            )
        known = False
        eta = 0.0
        if stage is not None:
            if done and total and done > 0:
                eta += stage_elapsed * max(0.0, float(total) / float(done) - 1.0)
                known = True
            elif stage in history:
                eta += max(0.0, history[stage] - stage_elapsed)
                known = True
        if stage is not None and stage in planned:
            for name in planned[planned.index(stage) + 1:]:
                if name in history:
                    eta += history[name]
                    known = True
        return round(eta, 3) if known else None

    def beat(self) -> dict | None:
        """Emit one heartbeat event (None when no stage is running)."""
        with self._lock:
            stage = self._stage
            if stage is None:
                return None
            event = {
                "event": "heartbeat",
                "stage": stage,
                "elapsed_s": round(time.monotonic() - self._t0, 3),
                "stage_elapsed_s": round(time.monotonic() - self._stage_t0, 3),
            }
            if self._done is not None:
                event["done"] = self._done
                if self._total is not None:
                    event["total"] = self._total
                event["unit"] = self._unit
            event.update(self._context)
        event["eta_s"] = self.eta_s()
        self._record(event)
        return event

    def _record(self, event: dict) -> None:
        with self._lock:
            self.events.append(event)
        from repro.obs.logs import log

        log(
            f"progress.{event.get('event', 'beat')}",
            **{k: v for k, v in event.items() if k != "event"},
        )
        if self.stream is not None:
            parts = [f"{k}={v}" for k, v in event.items() if v is not None]
            print("[progress] " + " ".join(parts), file=self.stream, flush=True)
        if self._emit_fn is not None:
            self._emit_fn(event)

    def as_dict(self) -> dict:
        """The manifest's ``progress`` section."""
        with self._lock:
            return {"interval_s": self.interval_s, "events": list(self.events)}


# -- module-level current instances ------------------------------------------

_profiler: Profiler | None = None
_heartbeat: Heartbeat | None = None


def get_profiler() -> Profiler | None:
    return _profiler


def set_profiler(profiler: Profiler | None) -> Profiler | None:
    """Install ``profiler`` as the process-wide profiler; returns the
    previous one (restore it in a ``finally``)."""
    global _profiler
    prev = _profiler
    _profiler = profiler
    return prev


def install_profiler(
    tracer: Tracer | None = None,
    interval_s: float = DEFAULT_PROFILE_INTERVAL_S,
) -> Profiler:
    """Create, install, and start a profiler over the current tracer."""
    profiler = Profiler(tracer=tracer, interval_s=interval_s)
    set_profiler(profiler)
    return profiler.start()


def get_heartbeat() -> Heartbeat | None:
    return _heartbeat


def set_heartbeat(heartbeat: Heartbeat | None) -> Heartbeat | None:
    """Install ``heartbeat`` process-wide; returns the previous one."""
    global _heartbeat
    prev = _heartbeat
    _heartbeat = heartbeat
    return prev


def install_heartbeat(
    interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
    history: dict[str, float] | None = None,
    stream=None,
) -> Heartbeat:
    """Create, install, and start a heartbeat emitter."""
    heartbeat = Heartbeat(interval_s=interval_s, history=history, stream=stream)
    set_heartbeat(heartbeat)
    return heartbeat.start()
