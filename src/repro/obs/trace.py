"""Hierarchical span tracing with Chrome ``trace_event`` export.

The tracer is the single timing substrate of the flow: engine stages,
per-subgraph ILP solves (including those running inside
``ProcessPoolExecutor`` workers), timer retimes, and ECO recomposes all
open *spans* — nested, thread-safe intervals carrying a category and a
small dict of args.  A finished run exports directly to Chrome's
``trace_event`` JSON (:meth:`Tracer.write_chrome_trace`), so traces open
in Perfetto / ``chrome://tracing`` without conversion.

Design constraints:

* **Near-zero overhead when disabled.**  The module-level :func:`span`
  helper returns one shared no-op context manager when no enabled tracer
  is installed — a global load, a truth test, and two empty method calls
  per instrumentation site (sub-microsecond; see
  ``benchmarks/test_obs_overhead.py``).
* **Thread-safe.**  The active-span stack is thread-local, so spans
  opened on different threads nest independently; the finished-record
  list is guarded by a lock.
* **Process-mergeable.**  Workers trace into their own
  :class:`Tracer` (sharing the parent's ``perf_counter`` epoch — on
  Linux ``CLOCK_MONOTONIC`` is system-wide, so timestamps line up) and
  ship their records back with the result; :meth:`Tracer.adopt` remaps
  span ids and re-parents the worker's root spans under the caller's
  current span.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field


@dataclass
class SpanRecord:
    """One finished span.  Picklable: workers return lists of these."""

    id: int
    parent_id: int | None
    name: str
    cat: str
    start_us: float
    dur_us: float
    pid: int
    tid: int
    args: dict = field(default_factory=dict)


class NullSpan:
    """The shared do-nothing span handed out when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        pass


NULL_SPAN = NullSpan()


class _ActiveSpan:
    """A live span: a context manager that records itself on exit."""

    __slots__ = ("_tracer", "name", "cat", "args", "id", "parent_id", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict | None):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.id = next(tracer._ids)
        self.parent_id: int | None = None
        self._t0 = 0.0

    def set(self, **args) -> None:
        """Attach (or update) args mid-span, e.g. counts known only at the
        end of the work."""
        if self.args is None:
            self.args = args
        else:
            self.args.update(args)

    def __enter__(self) -> "_ActiveSpan":
        stack = self._tracer._stack()
        self.parent_id = stack[-1][0] if stack else None
        stack.append((self.id, self.name))
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1][0] == self.id:
            stack.pop()
        tracer._record(
            SpanRecord(
                id=self.id,
                parent_id=self.parent_id,
                name=self.name,
                cat=self.cat,
                start_us=(self._t0 - tracer.epoch) * 1e6,
                dur_us=(t1 - self._t0) * 1e6,
                pid=os.getpid(),
                tid=threading.get_ident(),
                args=self.args or {},
            )
        )
        return False


class Tracer:
    """Collects spans for one run.

    ``epoch`` is the ``time.perf_counter()`` origin all timestamps are
    relative to; pass the parent's epoch into worker-side tracers so the
    merged timeline is consistent.
    """

    def __init__(self, enabled: bool = True, epoch: float | None = None) -> None:
        self.enabled = enabled
        self.epoch = time.perf_counter() if epoch is None else epoch
        self._records: list[SpanRecord] = []
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        # Every thread's live span stack, keyed by thread ident.  The
        # lists are the same objects ``_stack`` mutates, so the sampling
        # profiler can snapshot any thread's stack without touching its
        # thread-local state (reads race benignly under the GIL).
        self._thread_stacks: dict[int, list[tuple[int, str]]] = {}

    # -- recording ----------------------------------------------------------

    def span(self, name: str, cat: str = "flow", **args) -> "_ActiveSpan | NullSpan":
        """Open a span; use as ``with tracer.span("stage.solve") as sp:``."""
        if not self.enabled:
            return NULL_SPAN
        return _ActiveSpan(self, name, cat, args or None)

    def _stack(self) -> list[tuple[int, str]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            with self._lock:
                self._thread_stacks[threading.get_ident()] = stack
        return stack

    def current_span_id(self) -> int | None:
        stack = self._stack()
        return stack[-1][0] if stack else None

    def current_stack_names(self) -> tuple[str, ...]:
        """The calling thread's open span names, outermost first."""
        return tuple(name for _, name in self._stack())

    def active_stacks(self) -> dict[int, tuple[str, ...]]:
        """Snapshot of every thread's live span-name stack.

        This is the sampling profiler's read path: a point-in-time copy
        of each registered thread's stack (threads that never opened a
        span do not appear; finished threads may linger with an empty
        stack).  The copy is taken without the tracer lock — the GIL
        makes ``list(stack)`` safe against concurrent append/pop, and a
        sample that straddles a push/pop is off by at most one frame.
        """
        return {
            tid: tuple(name for _, name in list(stack))
            for tid, stack in list(self._thread_stacks.items())
        }

    def _record(self, rec: SpanRecord) -> None:
        with self._lock:
            self._records.append(rec)

    def records(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._records)

    def adopt(self, records: list[SpanRecord], parent_id: int | None = None) -> None:
        """Merge spans captured elsewhere (typically a worker process).

        Every record gets a fresh id from this tracer (worker ids would
        collide across workers); internal parent links are preserved, and
        the foreign roots are re-parented under ``parent_id`` (default:
        the calling thread's current span), so worker activity nests
        inside the stage that fanned it out.
        """
        if not records:
            return
        if parent_id is None:
            parent_id = self.current_span_id()
        remap: dict[int, int] = {}
        for rec in records:
            remap[rec.id] = next(self._ids)
        adopted = []
        for rec in records:
            adopted.append(
                SpanRecord(
                    id=remap[rec.id],
                    parent_id=remap.get(rec.parent_id, parent_id),
                    name=rec.name,
                    cat=rec.cat,
                    start_us=rec.start_us,
                    dur_us=rec.dur_us,
                    pid=rec.pid,
                    tid=rec.tid,
                    args=rec.args,
                )
            )
        with self._lock:
            self._records.extend(adopted)

    # -- reporting ----------------------------------------------------------

    def rollup(self) -> dict[str, dict[str, float]]:
        """Per-span-name totals: ``{name: {count, total_s}}`` — the manifest's
        condensed view of where the run spent its time."""
        out: dict[str, dict[str, float]] = {}
        for rec in self.records():
            slot = out.setdefault(rec.name, {"count": 0, "total_s": 0.0})
            slot["count"] += 1
            slot["total_s"] += rec.dur_us / 1e6
        return out

    def to_chrome_trace(self) -> dict:
        """The run as a Chrome ``trace_event`` object (Perfetto-loadable).

        Every span becomes a complete (``ph: "X"``) event; per-process
        metadata events label worker processes so parallel ILP solves show
        up as their own tracks.
        """
        events: list[dict] = []
        own_pid = os.getpid()
        seen_pids: set[int] = set()
        for rec in self.records():
            if rec.pid not in seen_pids:
                seen_pids.add(rec.pid)
                label = "repro" if rec.pid == own_pid else f"repro worker {rec.pid}"
                events.append(
                    {
                        "ph": "M",
                        "name": "process_name",
                        "pid": rec.pid,
                        "tid": 0,
                        "args": {"name": label},
                    }
                )
            events.append(
                {
                    "name": rec.name,
                    "cat": rec.cat,
                    "ph": "X",
                    "ts": rec.start_us,
                    "dur": rec.dur_us,
                    "pid": rec.pid,
                    "tid": rec.tid,
                    "args": rec.args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, default=str)


# -- module-level current tracer -------------------------------------------

_tracer: Tracer | None = None


def get_tracer() -> Tracer | None:
    return _tracer


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` as the process-wide current tracer; returns the
    previous one (restore it in a ``finally``)."""
    global _tracer
    prev = _tracer
    _tracer = tracer
    return prev


def install_tracer(enabled: bool = True, epoch: float | None = None) -> Tracer:
    """Create and install a fresh tracer (the common run-scoped setup)."""
    tracer = Tracer(enabled=enabled, epoch=epoch)
    set_tracer(tracer)
    return tracer


def tracing_enabled() -> bool:
    t = _tracer
    return t is not None and t.enabled


def span(name: str, cat: str = "flow", **args) -> "_ActiveSpan | NullSpan":
    """Open a span on the current tracer — the one call every
    instrumentation site makes.  When tracing is off this is a global
    load, a truth test, and a shared no-op object."""
    t = _tracer
    if t is None or not t.enabled:
        return NULL_SPAN
    return t.span(name, cat, **args)
