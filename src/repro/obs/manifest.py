"""Run manifests: one JSON per run with config, metrics, and span roll-ups.

A manifest is the durable record of "what did this run do and where did
the time go": the flow configuration, the full metrics-registry snapshot
(ILP node/pivot counts, cache hit rates, timer retime stats, ...), the
tracer's per-span-name roll-up, and the flow's headline results.  The
schema is versioned and validated (:func:`validate_manifest`), so CI can
track the perf trajectory across PRs — ``benchmarks/emit_bench.py``
builds on this to emit ``BENCH_flow.json``.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import asdict, is_dataclass

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import Tracer, get_tracer

MANIFEST_SCHEMA = "repro.obs.manifest/1"
BENCH_SCHEMA = "repro.bench.flow/2"
BENCH_HISTORY_SCHEMA = "repro.bench.history/1"
BENCH_MEM_SCHEMA = "repro.bench.mem/1"
BENCH_SERVE_SCHEMA = "repro.bench.serve/1"

#: Top-level keys every manifest must carry (CI fails the run otherwise).
MANIFEST_REQUIRED_KEYS = (
    "schema",
    "generated_unix",
    "environment",
    "design",
    "config",
    "metrics",
    "spans",
    "flow",
)

#: Top-level keys of the ``BENCH_flow.json`` trajectory file.  ``/2``
#: adds ``git_sha`` (which commit produced the numbers) and the
#: per-design ``eco`` block (the warm-started recompose demo).
BENCH_REQUIRED_KEYS = ("schema", "generated_unix", "git_sha", "scale", "designs")

#: Keys every per-design entry of a bench file must carry.
BENCH_DESIGN_KEYS = (
    "runtime_seconds",
    "stage_seconds",
    "registers_before",
    "registers_after",
    "register_reduction",
    "wns",
    "tns",
    "eco",
    "metrics",
)

#: Top-level keys of one ``BENCH_history.jsonl`` line — the compact
#: per-commit trajectory record ``benchmarks/emit_bench.py`` appends.
BENCH_HISTORY_KEYS = ("schema", "generated_unix", "git_sha", "scale", "designs")

#: Keys of one design's summary inside a history line.
BENCH_HISTORY_DESIGN_KEYS = (
    "runtime_seconds",
    "compose_seconds",
    "registers_after",
    "tns",
    "warmstart_hits",
)

#: Keys of one ``benchmarks/mem_budget.py`` history line — the memory
#: trajectory of the scale path (``repro.bench.mem/1``).  Records live in
#: the same ``BENCH_history.jsonl`` as the flow summaries; the ``schema``
#: field tells the two record kinds apart.
BENCH_MEM_KEYS = (
    "schema",
    "generated_unix",
    "git_sha",
    "n_registers",
    "baseline_registers",
    "peak_rss_bytes",
    "bytes_per_register",
    "marginal_bytes_per_register",
    "budget_bytes_per_register",
    "phase_seconds",
)

#: Keys of one ``benchmarks/load_gen.py`` history line — the service-layer
#: trajectory (``repro.bench.serve/1``): the deterministic load generator's
#: throughput, tail latency, and cross-request cache hit-ratio.  Lives in
#: the same ``BENCH_history.jsonl``, told apart by its ``schema`` field.
BENCH_SERVE_KEYS = (
    "schema",
    "generated_unix",
    "git_sha",
    "workload",
    "designs",
    "clients",
    "jobs",
    "throughput_jobs_per_s",
    "p50_ms",
    "p99_ms",
    "cache_hit_ratio",
)

#: Expected value shapes inside a bench design entry, enforced by
#: :func:`validate_bench` — a present-but-mistyped value (a stringified
#: runtime, a list where the metrics snapshot belongs) corrupts the
#: trajectory diffs just as silently as a missing key.
_BENCH_NUMBER_KEYS = ("runtime_seconds", "register_reduction", "wns", "tns")
_BENCH_INT_KEYS = ("registers_before", "registers_after")
_BENCH_DICT_KEYS = ("stage_seconds", "eco", "metrics")


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _plain(value):
    """Config objects → JSON-ready plain data (dataclasses recurse)."""
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _plain(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def build_manifest(
    design: dict,
    config: object = None,
    flow: dict | None = None,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    resources: dict | None = None,
    progress: dict | None = None,
) -> dict:
    """Assemble one run's manifest.

    ``design`` names what ran (at least a ``name``); ``config`` is any
    dataclass/dict describing the knobs; ``flow`` carries the headline
    results (runtimes, register counts, QoR).  ``registry`` and
    ``tracer`` default to the process-wide current ones.  ``resources``
    (a :meth:`ResourceSampler.as_dict` RSS/CPU timeline) and ``progress``
    (a :meth:`Heartbeat.as_dict` event log) are archived verbatim when a
    run collected them.
    """
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "generated_unix": round(time.time(), 3),
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "design": _plain(design),
        "config": _plain(config) if config is not None else {},
        "metrics": registry.snapshot(),
        "spans": tracer.rollup() if tracer is not None else {},
        "flow": _plain(flow) if flow is not None else {},
    }
    if resources is not None:
        manifest["resources"] = _plain(resources)
    if progress is not None:
        manifest["progress"] = _plain(progress)
    return manifest


def validate_manifest(manifest: dict) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(manifest, dict):
        return [f"manifest must be an object, got {type(manifest).__name__}"]
    for key in MANIFEST_REQUIRED_KEYS:
        if key not in manifest:
            errors.append(f"missing required key {key!r}")
    if manifest.get("schema") not in (None, MANIFEST_SCHEMA):
        errors.append(
            f"schema mismatch: {manifest.get('schema')!r} != {MANIFEST_SCHEMA!r}"
        )
    metrics = manifest.get("metrics")
    if metrics is not None:
        for section in ("counters", "gauges", "histograms"):
            if section not in metrics:
                errors.append(f"metrics missing section {section!r}")
    return errors


def validate_bench(data: dict) -> list[str]:
    """Schema check of a ``BENCH_flow.json`` payload (empty = valid)."""
    errors: list[str] = []
    if not isinstance(data, dict):
        return [f"bench file must be an object, got {type(data).__name__}"]
    for key in BENCH_REQUIRED_KEYS:
        if key not in data:
            errors.append(f"missing required key {key!r}")
    if data.get("schema") not in (None, BENCH_SCHEMA):
        errors.append(f"schema mismatch: {data.get('schema')!r} != {BENCH_SCHEMA!r}")
    for key in ("generated_unix", "scale"):
        if key in data and not _is_number(data[key]):
            errors.append(
                f"{key!r} must be a number, got {type(data[key]).__name__}"
            )
    if "git_dirty" in data and not isinstance(data["git_dirty"], bool):
        errors.append(
            f"'git_dirty' must be a boolean, got {type(data['git_dirty']).__name__}"
        )
    designs = data.get("designs")
    if not isinstance(designs, dict) or not designs:
        errors.append("'designs' must be a non-empty object")
        return errors
    for name, entry in designs.items():
        if not isinstance(entry, dict):
            errors.append(
                f"design {name!r} must be an object, got {type(entry).__name__}"
            )
            continue
        for key in BENCH_DESIGN_KEYS:
            if key not in entry:
                errors.append(f"design {name!r} missing key {key!r}")
        for key in _BENCH_NUMBER_KEYS:
            if key in entry and not _is_number(entry[key]):
                errors.append(
                    f"design {name!r} key {key!r} must be a number, "
                    f"got {type(entry[key]).__name__}"
                )
        for key in _BENCH_INT_KEYS:
            if key in entry and (
                not isinstance(entry[key], int) or isinstance(entry[key], bool)
            ):
                errors.append(
                    f"design {name!r} key {key!r} must be an integer, "
                    f"got {type(entry[key]).__name__}"
                )
        for key in _BENCH_DICT_KEYS:
            if key in entry and not isinstance(entry[key], dict):
                errors.append(
                    f"design {name!r} key {key!r} must be an object, "
                    f"got {type(entry[key]).__name__}"
                )
    return errors


def validate_bench_history(record: dict) -> list[str]:
    """Schema check of one ``BENCH_history.jsonl`` line (empty = valid)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return [f"history record must be an object, got {type(record).__name__}"]
    for key in BENCH_HISTORY_KEYS:
        if key not in record:
            errors.append(f"missing required key {key!r}")
    if record.get("schema") not in (None, BENCH_HISTORY_SCHEMA):
        errors.append(
            f"schema mismatch: {record.get('schema')!r} != {BENCH_HISTORY_SCHEMA!r}"
        )
    for key in ("generated_unix", "scale"):
        if key in record and not _is_number(record[key]):
            errors.append(f"{key!r} must be a number, got {type(record[key]).__name__}")
    if "git_sha" in record and not isinstance(record["git_sha"], str):
        errors.append(f"'git_sha' must be a string, got {type(record['git_sha']).__name__}")
    if "git_dirty" in record and not isinstance(record["git_dirty"], bool):
        errors.append(
            f"'git_dirty' must be a boolean, got {type(record['git_dirty']).__name__}"
        )
    designs = record.get("designs")
    if not isinstance(designs, dict) or not designs:
        errors.append("'designs' must be a non-empty object")
        return errors
    for name, entry in designs.items():
        if not isinstance(entry, dict):
            errors.append(
                f"design {name!r} must be an object, got {type(entry).__name__}"
            )
            continue
        for key in BENCH_HISTORY_DESIGN_KEYS:
            if key not in entry:
                errors.append(f"design {name!r} missing key {key!r}")
            elif not _is_number(entry[key]):
                errors.append(
                    f"design {name!r} key {key!r} must be a number, "
                    f"got {type(entry[key]).__name__}"
                )
    return errors


def validate_bench_mem(record: dict) -> list[str]:
    """Schema check of one ``repro.bench.mem/1`` history line (empty = valid)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return [f"mem record must be an object, got {type(record).__name__}"]
    for key in BENCH_MEM_KEYS:
        if key not in record:
            errors.append(f"missing required key {key!r}")
    if record.get("schema") not in (None, BENCH_MEM_SCHEMA):
        errors.append(
            f"schema mismatch: {record.get('schema')!r} != {BENCH_MEM_SCHEMA!r}"
        )
    for key in (
        "generated_unix",
        "n_registers",
        "baseline_registers",
        "peak_rss_bytes",
        "bytes_per_register",
        "marginal_bytes_per_register",
        "budget_bytes_per_register",
    ):
        if key in record and not _is_number(record[key]):
            errors.append(f"{key!r} must be a number, got {type(record[key]).__name__}")
    if "git_sha" in record and not isinstance(record["git_sha"], str):
        errors.append(
            f"'git_sha' must be a string, got {type(record['git_sha']).__name__}"
        )
    if "git_dirty" in record and not isinstance(record["git_dirty"], bool):
        errors.append(
            f"'git_dirty' must be a boolean, got {type(record['git_dirty']).__name__}"
        )
    phases = record.get("phase_seconds")
    if phases is not None:
        if not isinstance(phases, dict):
            errors.append(
                f"'phase_seconds' must be an object, got {type(phases).__name__}"
            )
        else:
            for name, seconds in phases.items():
                if not _is_number(seconds):
                    errors.append(
                        f"phase {name!r} must be a number, "
                        f"got {type(seconds).__name__}"
                    )
    return errors


def validate_bench_serve(record: dict) -> list[str]:
    """Schema check of one ``repro.bench.serve/1`` history line (empty = valid)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return [f"serve record must be an object, got {type(record).__name__}"]
    for key in BENCH_SERVE_KEYS:
        if key not in record:
            errors.append(f"missing required key {key!r}")
    if record.get("schema") not in (None, BENCH_SERVE_SCHEMA):
        errors.append(
            f"schema mismatch: {record.get('schema')!r} != {BENCH_SERVE_SCHEMA!r}"
        )
    for key in (
        "generated_unix",
        "throughput_jobs_per_s",
        "p50_ms",
        "p99_ms",
        "cache_hit_ratio",
    ):
        if key in record and not _is_number(record[key]):
            errors.append(f"{key!r} must be a number, got {type(record[key]).__name__}")
    for key in ("designs", "clients", "jobs"):
        if key in record and (
            not isinstance(record[key], int) or isinstance(record[key], bool)
        ):
            errors.append(
                f"{key!r} must be an integer, got {type(record[key]).__name__}"
            )
    if "workload" in record and not isinstance(record["workload"], str):
        errors.append(
            f"'workload' must be a string, got {type(record['workload']).__name__}"
        )
    if "git_sha" in record and not isinstance(record["git_sha"], str):
        errors.append(
            f"'git_sha' must be a string, got {type(record['git_sha']).__name__}"
        )
    if "git_dirty" in record and not isinstance(record["git_dirty"], bool):
        errors.append(
            f"'git_dirty' must be a boolean, got {type(record['git_dirty']).__name__}"
        )
    if "deterministic" in record and not isinstance(record["deterministic"], bool):
        errors.append(
            f"'deterministic' must be a boolean, "
            f"got {type(record['deterministic']).__name__}"
        )
    ratio = record.get("cache_hit_ratio")
    if _is_number(ratio) and not 0.0 <= ratio <= 1.0:
        errors.append(f"'cache_hit_ratio' must be within [0, 1], got {ratio}")
    return errors


def write_manifest(path: str, manifest: dict) -> None:
    problems = validate_manifest(manifest)
    if problems:
        raise ValueError("refusing to write invalid manifest: " + "; ".join(problems))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=False, default=str)
        fh.write("\n")
