"""Structured run logs over the stdlib ``logging`` machinery.

Library code logs through :func:`log` (or a logger from
:func:`get_logger`) instead of writing to stdout: silent by default (a
``NullHandler`` on the ``repro`` root logger), one flip away from
machine-readable output.  ``REPRO_LOG_JSON=1`` attaches a JSON-lines
handler on stderr — every record becomes one ``{"ts": ..., "level": ...,
"logger": ..., "event": ..., **fields}`` object, ready for ingestion.
``REPRO_LOG=1`` attaches a human-readable handler instead;
``REPRO_LOG_LEVEL`` overrides the threshold (default ``INFO``).
"""

from __future__ import annotations

import json
import logging
import os

JSON_ENV = "REPRO_LOG_JSON"
TEXT_ENV = "REPRO_LOG"
LEVEL_ENV = "REPRO_LOG_LEVEL"

_ROOT = "repro"
_configured = False


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record; extra fields ride in ``record.fields``."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload.update(fields)
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class TextFormatter(logging.Formatter):
    """Human-readable line with the structured fields appended as k=v."""

    def format(self, record: logging.LogRecord) -> str:
        base = (
            f"{self.formatTime(record, '%H:%M:%S')} "
            f"{record.levelname:<7} {record.name}: {record.getMessage()}"
        )
        fields = getattr(record, "fields", None)
        if fields:
            base += " " + " ".join(f"{k}={v}" for k, v in fields.items())
        return base


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0")


def configure_logging(
    json_mode: bool | None = None, level: int | str | None = None, force: bool = False
) -> None:
    """Attach a handler to the ``repro`` root logger.

    With no arguments the environment decides: ``REPRO_LOG_JSON=1`` →
    JSON lines on stderr, ``REPRO_LOG=1`` → human lines on stderr,
    neither → a ``NullHandler`` (library stays silent).  Idempotent
    unless ``force``.
    """
    global _configured
    if _configured and not force:
        return
    _configured = True
    root = logging.getLogger(_ROOT)
    if force:
        for h in list(root.handlers):
            root.removeHandler(h)
    if json_mode is None:
        json_mode = _env_truthy(JSON_ENV)
    text_mode = _env_truthy(TEXT_ENV)
    if level is None:
        level = os.environ.get(LEVEL_ENV, "INFO")
    if json_mode or text_mode:
        handler = logging.StreamHandler()
        handler.setFormatter(JsonLinesFormatter() if json_mode else TextFormatter())
        root.addHandler(handler)
        root.setLevel(level)
    else:
        root.addHandler(logging.NullHandler())
    root.propagate = False


def get_logger(name: str = _ROOT) -> logging.Logger:
    """A logger under the ``repro`` hierarchy, configured on first use."""
    configure_logging()
    if name != _ROOT and not name.startswith(_ROOT + "."):
        name = f"{_ROOT}.{name}"
    return logging.getLogger(name)


def log(event: str, *, level: int = logging.INFO, logger: str = _ROOT, **fields) -> None:
    """Emit one structured record: a short event name plus k=v fields.

    ``log("eco.recompose", dirty=12, composed=3)`` renders as JSON lines
    under ``REPRO_LOG_JSON=1`` and as ``eco.recompose dirty=12
    composed=3`` under ``REPRO_LOG=1``; with neither set it is a no-op
    beyond an isEnabledFor check.
    """
    lg = get_logger(logger)
    if lg.isEnabledFor(level):
        lg.log(level, event, extra={"fields": fields})
