"""Trace analytics: critical paths through span trees, manifest diffs.

Two questions any two runs should answer in one command:

* ``repro obs critical-path trace.json`` — *where did the time actually
  go?*  Loads a Chrome ``trace_event`` export (ours or anyone's
  complete-event trace), rebuilds the span forest per ``(pid, tid)``
  track by interval containment, computes every span's **self time**
  (duration minus children), and reports the root-to-leaf chain with the
  largest total self time — the trace's one-line answer to "what should
  the next perf PR attack".
* ``repro obs diff manifest_a manifest_b`` — *what changed between two
  runs?*  Compares the span roll-ups, metrics counters, and flow
  headline numbers of two run manifests and prints the per-stage /
  per-counter deltas sorted by impact.

Both run on the artifacts ``repro run --trace-out/--manifest-out``
already writes, so any archived run is comparable forever.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


# -- chrome-trace loading ----------------------------------------------------


def load_chrome_trace(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    problems = validate_chrome_trace(data)
    if problems:
        raise ValueError(f"{path}: not a usable Chrome trace — " + "; ".join(problems))
    return data


def validate_chrome_trace(data: object) -> list[str]:
    """Schema check of a Chrome ``trace_event`` payload (empty = valid).

    Accepts the JSON-object form (``{"traceEvents": [...]}``); every
    complete (``ph == "X"``) event must carry numeric ``ts``/``dur`` and
    ``pid``/``tid`` — the fields the analytics (and Perfetto) key on.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"trace must be an object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: must be an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M", "B", "E", "i", "C"):
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph != "X":
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"event {i}: 'name' must be a string")
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"event {i}: {key!r} must be a number")
        if isinstance(event.get("dur"), (int, float)) and event["dur"] < 0:
            problems.append(f"event {i}: 'dur' must be non-negative")
        for key in ("pid", "tid"):
            if key not in event:
                problems.append(f"event {i}: missing {key!r}")
    return problems


@dataclass
class SpanNode:
    """One complete event in the reconstructed span forest."""

    name: str
    start_us: float
    dur_us: float
    pid: int
    tid: int
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def self_us(self) -> float:
        return max(0.0, self.dur_us - sum(c.dur_us for c in self.children))


def build_span_forest(data: dict) -> list[SpanNode]:
    """Rebuild span nesting from a Chrome trace by interval containment.

    Chrome complete events carry no parent links; within one
    ``(pid, tid)`` track, a span's parent is the closest earlier span
    whose interval contains it (exactly how Perfetto stacks them).
    Returns the forest's roots — one tree per outermost span, worker
    tracks contributing their own roots.
    """
    nodes = [
        SpanNode(
            name=e["name"],
            start_us=float(e["ts"]),
            dur_us=float(e["dur"]),
            pid=e["pid"],
            tid=e["tid"],
        )
        for e in data.get("traceEvents", [])
        if e.get("ph") == "X"
    ]
    roots: list[SpanNode] = []
    by_track: dict[tuple[int, int], list[SpanNode]] = {}
    for node in nodes:
        by_track.setdefault((node.pid, node.tid), []).append(node)
    for track in by_track.values():
        # Sort by start; ties (a parent and child starting the same
        # microsecond) put the longer span first so it encloses.
        track.sort(key=lambda n: (n.start_us, -n.dur_us))
        stack: list[SpanNode] = []
        for node in track:
            while stack and (
                node.start_us >= stack[-1].start_us + stack[-1].dur_us
                or node.start_us + node.dur_us > stack[-1].start_us + stack[-1].dur_us
            ):
                stack.pop()
            if stack:
                stack[-1].children.append(node)
            else:
                roots.append(node)
            stack.append(node)
    return roots


@dataclass(frozen=True)
class PathStep:
    """One hop of a critical path."""

    name: str
    dur_us: float
    self_us: float
    pid: int


def critical_path(data: dict) -> list[PathStep]:
    """The root-to-leaf chain with the largest total self time.

    Walks every tree of the reconstructed forest with a bottom-up DP
    (best chain below each node), then returns the globally best chain,
    outermost span first.  Self time — not duration — is what the chain
    maximizes, so a thin wrapper span never outranks the stage doing the
    work under it.
    """
    best_chain: list[SpanNode] = []
    best_score = -1.0

    def visit(node: SpanNode) -> tuple[float, list[SpanNode]]:
        best_child_score, best_child_chain = 0.0, []
        for child in node.children:
            score, chain = visit(child)
            if score > best_child_score:
                best_child_score, best_child_chain = score, chain
        return node.self_us + best_child_score, [node] + best_child_chain

    for root in build_span_forest(data):
        score, chain = visit(root)
        if score > best_score:
            best_score, best_chain = score, chain
    return [
        PathStep(name=n.name, dur_us=n.dur_us, self_us=n.self_us, pid=n.pid)
        for n in best_chain
    ]


def format_critical_path(steps: list[PathStep]) -> str:
    if not steps:
        return "empty trace: no complete events"
    total_self = sum(s.self_us for s in steps)
    lines = [
        f"critical path: {len(steps)} spans, "
        f"{total_self / 1e6:.4f}s attributable self time",
        f"{'span':<40} {'total(s)':>10} {'self(s)':>10} {'self%':>7}",
        f"{'-' * 40} {'-' * 10} {'-' * 10} {'-' * 7}",
    ]
    for depth, step in enumerate(steps):
        name = "  " * depth + step.name
        share = step.self_us / total_self if total_self > 0 else 0.0
        lines.append(
            f"{name:<40} {step.dur_us / 1e6:>10.4f} "
            f"{step.self_us / 1e6:>10.4f} {share:>6.1%}"
        )
    return "\n".join(lines)


# -- manifest diffing --------------------------------------------------------


def load_manifest(path: str) -> dict:
    from repro.obs.manifest import validate_manifest

    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    problems = validate_manifest(data)
    if problems:
        raise ValueError(f"{path}: invalid manifest — " + "; ".join(problems))
    return data


def _numeric_items(mapping: dict) -> dict[str, float]:
    return {
        k: float(v)
        for k, v in mapping.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def _diff_numbers(a: dict[str, float], b: dict[str, float]) -> list[dict]:
    rows = []
    for key in sorted(a.keys() | b.keys()):
        va, vb = a.get(key), b.get(key)
        row = {"name": key, "a": va, "b": vb}
        if va is not None and vb is not None:
            row["delta"] = vb - va
            row["ratio"] = (vb / va) if va else None
        rows.append(row)
    return rows


def diff_manifests(a: dict, b: dict) -> dict:
    """Per-stage / per-counter deltas between two run manifests.

    Returns ``{"spans": [...], "counters": [...], "gauges": [...],
    "flow": [...]}`` — each a list of ``{name, a, b, delta, ratio}``
    rows (``delta``/``ratio`` absent when a side is missing the entry).
    Span rows compare ``total_s``.
    """
    spans_a = {k: v.get("total_s", 0.0) for k, v in a.get("spans", {}).items()}
    spans_b = {k: v.get("total_s", 0.0) for k, v in b.get("spans", {}).items()}
    metrics_a, metrics_b = a.get("metrics", {}), b.get("metrics", {})
    return {
        "spans": _diff_numbers(spans_a, spans_b),
        "counters": _diff_numbers(
            _numeric_items(metrics_a.get("counters", {})),
            _numeric_items(metrics_b.get("counters", {})),
        ),
        "gauges": _diff_numbers(
            _numeric_items(metrics_a.get("gauges", {})),
            _numeric_items(metrics_b.get("gauges", {})),
        ),
        "flow": _diff_numbers(
            _numeric_items(a.get("flow", {})), _numeric_items(b.get("flow", {}))
        ),
    }


def format_manifest_diff(diff: dict, top: int = 15) -> str:
    """The human view: each section's rows sorted by |delta|, largest
    first, capped at ``top`` rows (the cap is printed, never silent)."""
    lines: list[str] = []
    for section in ("flow", "spans", "counters", "gauges"):
        rows = [r for r in diff.get(section, []) if r.get("delta") is not None]
        rows.sort(key=lambda r: abs(r["delta"]), reverse=True)
        changed = [r for r in rows if r["delta"] != 0]
        if not changed:
            continue
        lines.append(f"{section} ({len(changed)} changed):")
        for row in changed[:top]:
            ratio = f" ({row['ratio']:.3f}x)" if row.get("ratio") else ""
            lines.append(
                f"  {row['name']:<40} {row['a']:>14.6g} -> "
                f"{row['b']:>14.6g}  {row['delta']:+.6g}{ratio}"
            )
        if len(changed) > top:
            lines.append(f"  ... {len(changed) - top} more (use --top to widen)")
    if not lines:
        return "no differences in comparable numeric entries"
    return "\n".join(lines)
