"""``repro.obs`` — the unified observability layer.

One subsystem, three signals, one artifact:

* :mod:`repro.obs.trace` — hierarchical **span tracing** (context-manager
  API, thread/process-safe, near-zero overhead when disabled) with Chrome
  ``trace_event`` export, so any run opens directly in Perfetto;
* :mod:`repro.obs.metrics` — the **metrics registry** (counters, gauges,
  fixed-bucket histograms) every subsystem reports into: ILP node/pivot
  counts, cache hit rates, incremental-timing effort;
* :mod:`repro.obs.logs` — **structured run logs** over stdlib
  ``logging`` (JSON-lines via ``REPRO_LOG_JSON=1``);
* :mod:`repro.obs.manifest` — the **run manifest**: config + metrics +
  span roll-ups serialized to one validated JSON.

Instrumentation sites call :func:`span`, :func:`get_registry`, and
:func:`log`; runners (CLI, benchmarks, tests) install a tracer/registry
pair via :func:`install_tracer` / :func:`set_registry` and export with
:func:`build_manifest` / :meth:`Tracer.write_chrome_trace`.
"""

from repro.obs.logs import configure_logging, get_logger, log
from repro.obs.manifest import (
    BENCH_DESIGN_KEYS,
    BENCH_HISTORY_DESIGN_KEYS,
    BENCH_HISTORY_KEYS,
    BENCH_HISTORY_SCHEMA,
    BENCH_MEM_KEYS,
    BENCH_MEM_SCHEMA,
    BENCH_SERVE_SCHEMA,
    BENCH_REQUIRED_KEYS,
    BENCH_SCHEMA,
    MANIFEST_REQUIRED_KEYS,
    MANIFEST_SCHEMA,
    build_manifest,
    validate_bench,
    validate_bench_history,
    validate_bench_mem,
    validate_bench_serve,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    FRACTION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.profile import (
    Heartbeat,
    Profiler,
    ResourceSampler,
    get_heartbeat,
    get_profiler,
    install_heartbeat,
    install_profiler,
    set_heartbeat,
    set_profiler,
)
from repro.obs.trace import (
    NULL_SPAN,
    NullSpan,
    SpanRecord,
    Tracer,
    get_tracer,
    install_tracer,
    set_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "BENCH_DESIGN_KEYS",
    "BENCH_HISTORY_DESIGN_KEYS",
    "BENCH_HISTORY_KEYS",
    "BENCH_HISTORY_SCHEMA",
    "BENCH_MEM_KEYS",
    "BENCH_MEM_SCHEMA",
    "BENCH_SERVE_SCHEMA",
    "BENCH_REQUIRED_KEYS",
    "BENCH_SCHEMA",
    "COUNT_BUCKETS",
    "Counter",
    "FRACTION_BUCKETS",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "MANIFEST_REQUIRED_KEYS",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "Profiler",
    "ResourceSampler",
    "SpanRecord",
    "Tracer",
    "build_manifest",
    "configure_logging",
    "get_heartbeat",
    "get_logger",
    "get_profiler",
    "get_registry",
    "get_tracer",
    "install_heartbeat",
    "install_profiler",
    "install_tracer",
    "log",
    "set_heartbeat",
    "set_profiler",
    "set_registry",
    "set_tracer",
    "span",
    "tracing_enabled",
    "validate_bench",
    "validate_bench_history",
    "validate_bench_mem",
    "validate_bench_serve",
    "validate_manifest",
    "write_manifest",
]
