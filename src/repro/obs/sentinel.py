"""The bench-trajectory regression sentinel.

``BENCH_history.jsonl`` accumulates one line per ``emit_bench.py`` run
(schema ``repro.bench.flow``'s history summary) interleaved with
``mem_budget.py`` lines (``repro.bench.mem/1``).  This module turns that
log into per-metric *trajectories* — ``flow.D1.compose_seconds``,
``mem.100000.marginal_bytes_per_register``, ... — and flags the latest
point against a robust rolling baseline:

* baseline = median of the previous ``window`` points;
* noise band = ``mad_scale`` x MAD (median absolute deviation), floored
  at ``max_regress`` x |median| — so a metric whose history is flat to
  the microsecond still gets a sane relative band, and a noisy one is
  judged against its own scatter;
* direction-aware: ``lower_better`` (runtimes, bytes), ``higher_better``
  (warm-start hits), or ``ignore``.

Policy lives in a checked-in ``bench_policy.json`` (schema
``repro.bench.policy/1``): a ``defaults`` block plus per-metric
overrides keyed by ``fnmatch`` patterns, and the ``perf_smoke`` block
``benchmarks/perf_smoke.py`` reads its band from — one file owns every
performance threshold in the repo.

``repro bench report`` renders the verdict table (``--json`` for the
machine view); ``--check`` exits nonzero on any regression, which is the
CI gate (`perf-trajectory` job).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from statistics import median

from repro.obs.manifest import (
    BENCH_HISTORY_SCHEMA,
    BENCH_MEM_SCHEMA,
    BENCH_SERVE_SCHEMA,
    validate_bench_history,
    validate_bench_mem,
    validate_bench_serve,
)

POLICY_SCHEMA = "repro.bench.policy/1"

#: Directions a metric can be judged in.
DIRECTIONS = ("lower_better", "higher_better", "ignore")

#: Flow-history metrics that become per-design series (``flow.<design>.<k>``).
FLOW_SERIES_KEYS = (
    "runtime_seconds",
    "compose_seconds",
    "registers_after",
    "tns",
    "warmstart_hits",
)

#: Mem-history metrics that become per-size series (``mem.<n>.<k>``).
MEM_SERIES_KEYS = (
    "peak_rss_bytes",
    "bytes_per_register",
    "marginal_bytes_per_register",
)

#: Serve-history metrics that become per-workload series
#: (``serve.<workload>.<k>``), from ``benchmarks/load_gen.py``.
SERVE_SERIES_KEYS = (
    "throughput_jobs_per_s",
    "p50_ms",
    "p99_ms",
    "cache_hit_ratio",
)


@dataclass(frozen=True)
class MetricPolicy:
    """How one trajectory is judged."""

    direction: str = "lower_better"
    max_regress: float = 0.35
    """Relative band floor: a regression must exceed this fraction of the
    baseline magnitude even when the history is noiseless."""
    mad_scale: float = 4.0
    """Noise-band multiplier: latest must leave median ± k*MAD."""
    min_samples: int = 1
    """Prior points required before the metric can be gated at all."""
    window: int = 8
    """Rolling-baseline width (prior points, newest first)."""

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, got {self.direction!r}"
            )
        if self.max_regress < 0 or self.mad_scale < 0:
            raise ValueError("max_regress and mad_scale must be non-negative")
        if self.min_samples < 1 or self.window < 1:
            raise ValueError("min_samples and window must be >= 1")


@dataclass(frozen=True)
class Policy:
    """The parsed ``bench_policy.json``: defaults + pattern overrides."""

    defaults: MetricPolicy = field(default_factory=MetricPolicy)
    patterns: tuple[tuple[str, dict], ...] = ()
    perf_smoke: dict = field(default_factory=dict)

    def for_metric(self, name: str) -> MetricPolicy:
        """The effective policy for one series: defaults overlaid with
        every matching pattern, in file order (later patterns win)."""
        merged = {
            "direction": self.defaults.direction,
            "max_regress": self.defaults.max_regress,
            "mad_scale": self.defaults.mad_scale,
            "min_samples": self.defaults.min_samples,
            "window": self.defaults.window,
        }
        for pattern, overrides in self.patterns:
            if fnmatchcase(name, pattern):
                merged.update(overrides)
        return MetricPolicy(**merged)


def load_policy(path: str) -> Policy:
    """Parse and sanity-check a ``bench_policy.json``."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: policy must be an object")
    schema = data.get("schema")
    if schema not in (None, POLICY_SCHEMA):
        raise ValueError(f"{path}: schema mismatch: {schema!r} != {POLICY_SCHEMA!r}")
    allowed = {"direction", "max_regress", "mad_scale", "min_samples", "window"}
    defaults_raw = data.get("defaults", {})
    unknown = set(defaults_raw) - allowed
    if unknown:
        raise ValueError(f"{path}: unknown defaults keys {sorted(unknown)}")
    defaults = MetricPolicy(**defaults_raw)
    patterns: list[tuple[str, dict]] = []
    for pattern, overrides in data.get("metrics", {}).items():
        if not isinstance(overrides, dict):
            raise ValueError(f"{path}: metric {pattern!r} must map to an object")
        unknown = set(overrides) - allowed
        if unknown:
            raise ValueError(
                f"{path}: metric {pattern!r} has unknown keys {sorted(unknown)}"
            )
        patterns.append((pattern, dict(overrides)))
    return Policy(
        defaults=defaults,
        patterns=tuple(patterns),
        perf_smoke=dict(data.get("perf_smoke", {})),
    )


def default_policy_path() -> str:
    """The checked-in policy next to this repo's BENCH files."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))))
    return os.path.join(here, "bench_policy.json")


# -- history parsing ---------------------------------------------------------


@dataclass(frozen=True)
class Point:
    """One observation of one metric."""

    value: float
    git_sha: str
    generated_unix: float


def load_history(path: str) -> list[dict]:
    """Parse ``BENCH_history.jsonl``, validating every line.

    Raises ``ValueError`` listing every problem — the sentinel refuses to
    compute baselines over a corrupt log (a single mistyped line would
    silently skew every verdict after it).
    """
    records: list[dict] = []
    problems: list[str] = []
    with open(path, encoding="utf-8") as fh:
        for i, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {i}: not JSON ({exc})")
                continue
            schema = record.get("schema") if isinstance(record, dict) else None
            if schema == BENCH_MEM_SCHEMA:
                validate = validate_bench_mem
            elif schema == BENCH_SERVE_SCHEMA:
                validate = validate_bench_serve
            else:
                validate = validate_bench_history
            line_problems = validate(record)
            if line_problems:
                problems.extend(f"line {i}: {p}" for p in line_problems)
            else:
                records.append(record)
    if problems:
        raise ValueError(f"{path}: invalid history — " + "; ".join(problems))
    return records


def series_from_history(records: list[dict]) -> dict[str, list[Point]]:
    """Per-metric trajectories, in log order (oldest first).

    Flow lines fan out per design (``flow.D1.compose_seconds``); mem
    lines fan out per register count (``mem.100000.bytes_per_register``)
    so differently-sized runs never share a baseline.
    """
    series: dict[str, list[Point]] = {}
    for record in records:
        sha = record.get("git_sha", "unknown")
        when = float(record.get("generated_unix", 0.0))
        if record.get("schema") == BENCH_MEM_SCHEMA:
            size = record.get("n_registers", 0)
            for key in MEM_SERIES_KEYS:
                if key in record:
                    series.setdefault(f"mem.{size}.{key}", []).append(
                        Point(float(record[key]), sha, when)
                    )
        elif record.get("schema") == BENCH_SERVE_SCHEMA:
            workload = record.get("workload", "unknown")
            for key in SERVE_SERIES_KEYS:
                if key in record:
                    series.setdefault(f"serve.{workload}.{key}", []).append(
                        Point(float(record[key]), sha, when)
                    )
        elif record.get("schema") in (None, BENCH_HISTORY_SCHEMA):
            for design, entry in record.get("designs", {}).items():
                for key in FLOW_SERIES_KEYS:
                    if key in entry:
                        series.setdefault(f"flow.{design}.{key}", []).append(
                            Point(float(entry[key]), sha, when)
                        )
    return series


# -- evaluation --------------------------------------------------------------

STATUS_OK = "ok"
STATUS_REGRESSION = "regression"
STATUS_IMPROVED = "improved"
STATUS_INSUFFICIENT = "insufficient-history"
STATUS_SKIPPED = "skipped"


@dataclass(frozen=True)
class MetricVerdict:
    """One trajectory's judgment."""

    name: str
    status: str
    latest: float
    latest_sha: str
    baseline: float | None = None
    band: float | None = None
    prior_samples: int = 0
    direction: str = "lower_better"

    @property
    def delta(self) -> float | None:
        return None if self.baseline is None else self.latest - self.baseline


@dataclass
class SentinelReport:
    """Every trajectory's verdict plus the headline answer."""

    verdicts: list[MetricVerdict]
    history_lines: int = 0

    @property
    def regressions(self) -> list[MetricVerdict]:
        return [v for v in self.verdicts if v.status == STATUS_REGRESSION]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "schema": "repro.bench.report/1",
            "ok": self.ok,
            "history_lines": self.history_lines,
            "regressions": len(self.regressions),
            "metrics": [
                {
                    "name": v.name,
                    "status": v.status,
                    "latest": v.latest,
                    "latest_sha": v.latest_sha,
                    "baseline": v.baseline,
                    "band": v.band,
                    "delta": v.delta,
                    "prior_samples": v.prior_samples,
                    "direction": v.direction,
                }
                for v in self.verdicts
            ],
        }

    def format(self) -> str:
        """The human table: one line per trajectory, regressions first."""
        order = {
            STATUS_REGRESSION: 0,
            STATUS_IMPROVED: 1,
            STATUS_OK: 2,
            STATUS_INSUFFICIENT: 3,
            STATUS_SKIPPED: 4,
        }
        rows = sorted(self.verdicts, key=lambda v: (order[v.status], v.name))
        name_w = max([len(v.name) for v in rows] + [len("metric")])
        lines = [
            f"{'metric':<{name_w}} {'status':<20} {'latest':>12} "
            f"{'baseline':>12} {'band':>10}  n",
            f"{'-' * name_w} {'-' * 20} {'-' * 12} {'-' * 12} {'-' * 10}  -",
        ]
        for v in rows:
            baseline = f"{v.baseline:.6g}" if v.baseline is not None else "-"
            band = f"±{v.band:.3g}" if v.band is not None else "-"
            lines.append(
                f"{v.name:<{name_w}} {v.status:<20} {v.latest:>12.6g} "
                f"{baseline:>12} {band:>10}  {v.prior_samples}"
            )
        verdict = (
            "OK — no regressions"
            if self.ok
            else f"REGRESSION — {len(self.regressions)} metric(s) out of band"
        )
        lines.append(verdict)
        return "\n".join(lines)


def evaluate_series(name: str, points: list[Point], policy: MetricPolicy) -> MetricVerdict:
    """Judge one trajectory's newest point against its rolling baseline."""
    latest = points[-1]
    if policy.direction == "ignore":
        return MetricVerdict(
            name,
            STATUS_SKIPPED,
            latest.value,
            latest.git_sha,
            prior_samples=len(points) - 1,
            direction=policy.direction,
        )
    prior = points[:-1][-policy.window:]
    if len(prior) < policy.min_samples:
        return MetricVerdict(
            name,
            STATUS_INSUFFICIENT,
            latest.value,
            latest.git_sha,
            prior_samples=len(prior),
            direction=policy.direction,
        )
    values = [p.value for p in prior]
    base = median(values)
    mad = median(abs(v - base) for v in values)
    band = max(policy.mad_scale * mad, policy.max_regress * abs(base))
    # A metric whose baseline is exactly zero has no relative scale; any
    # MAD-derived band still applies, else every change would flag.
    worse = latest.value - base if policy.direction == "lower_better" else base - latest.value
    if worse > band:
        status = STATUS_REGRESSION
    elif worse < -band:
        status = STATUS_IMPROVED
    else:
        status = STATUS_OK
    return MetricVerdict(
        name,
        status,
        latest.value,
        latest.git_sha,
        baseline=base,
        band=band,
        prior_samples=len(prior),
        direction=policy.direction,
    )


def evaluate_history(records: list[dict], policy: Policy) -> SentinelReport:
    """Judge every trajectory in a parsed history log."""
    series = series_from_history(records)
    verdicts = [
        evaluate_series(name, points, policy.for_metric(name))
        for name, points in sorted(series.items())
    ]
    return SentinelReport(verdicts=verdicts, history_lines=len(records))
