"""The server's design registry: named worlds, each behind an EcoSession.

A :class:`DesignRegistry` owns the long-lived state of the service — one
:class:`~repro.flow.session.EcoSession` per registered design, all wired
into one :class:`~repro.serve.cache.SharedComponentCache` — plus the
synchronous job handlers the server dispatches onto worker threads.
Handlers never run concurrently *for the same design* (the server
serializes each design's jobs through its queue), so a handler may
freely mutate its session's world; handlers for different designs run in
parallel and only meet inside the lock-protected shared cache and the
thread-safe obs registry.
"""

from __future__ import annotations

import random
import time

from repro import obs
from repro.bench import generate_design, preset
from repro.core.composer import ComposerConfig
from repro.check.invariants import check_all, format_violations
from repro.flow.session import EcoSession, shared_session_cache
from repro.geometry.point import Point
from repro.library import default_library
from repro.serve.protocol import ERR_BAD_REQUEST, JobError, JobRequest

#: Per-job handler clock categories folded into a design's counters.
_MAX_VIOLATIONS_REPORTED = 50


class DesignEntry:
    """One named design and its session, plus per-design job counters."""

    def __init__(self, name: str, session: EcoSession, origin: dict | None = None):
        self.name = name
        self.session = session
        self.origin = dict(origin or {})
        self.jobs_done = 0
        self.jobs_failed = 0
        self.busy_seconds = 0.0

    def stats(self) -> dict:
        design = self.session.design
        return {
            "design": self.name,
            "primed": self.session._primed,
            "cells": len(design.cells),
            "registers": design.total_register_count(),
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "busy_seconds": round(self.busy_seconds, 6),
            "cache_components": len(self.session.cache.components),
            "cache_bytes": self.session.cache.total_bytes,
            **self.origin,
        }


class DesignRegistry:
    """Named designs sharing one process-wide component cache."""

    def __init__(self, shared_cache=None, config: ComposerConfig | None = None):
        self.shared_cache = shared_cache
        self.config = config or ComposerConfig()
        self._entries: dict[str, DesignEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> list[str]:
        return list(self._entries)

    def entry(self, name: str) -> DesignEntry:
        return self._entries[name]

    def session(self, name: str) -> EcoSession:
        return self._entries[name].session

    def add_bundle(self, name: str, bundle, origin: dict | None = None) -> DesignEntry:
        """Register a generated :class:`~repro.bench.generator.DesignBundle`."""
        if name in self._entries:
            raise ValueError(f"design {name!r} already registered")
        cache = None
        if self.shared_cache is not None:
            cache = shared_session_cache(
                bundle.design, self.config, self.shared_cache
            )
        session = EcoSession(
            bundle.design,
            bundle.timer,
            bundle.scan_model,
            config=self.config,
            cache=cache,
        )
        entry = DesignEntry(name, session, origin)
        self._entries[name] = entry
        return entry

    def add_preset(self, name: str, preset_name: str, scale: float = 1.0) -> DesignEntry:
        """Generate a synthetic preset world and register it under ``name``."""
        bundle = generate_design(preset(preset_name, scale=scale), default_library())
        return self.add_bundle(
            name, bundle, origin={"preset": preset_name, "scale": scale}
        )

    # -- job handlers (synchronous; called on a design's worker thread) -----

    def run_job(self, request: JobRequest) -> dict:
        """Dispatch one job against its design's session; returns the result
        payload.  Raises :class:`~repro.serve.protocol.JobError` for typed
        failures; any other exception is the server's cue to fail *this job
        only* (the session's committed state stays consistent — handlers
        mutate the world only through ``session.edit`` scopes that complete
        before recompose is entered)."""
        entry = self._entries[request.design]
        t0 = time.perf_counter()
        try:
            with obs.span(
                "serve.job",
                cat="serve",
                design=request.design,
                kind=request.kind,
                job=request.id,
            ):
                if request.kind == "compose":
                    result = self._run_compose(entry, request.params)
                elif request.kind == "eco":
                    result = self._run_eco(entry, request.params)
                elif request.kind == "check":
                    result = self._run_check(entry, request.params)
                else:  # "status" — the server answers globals; this is per-design
                    result = entry.stats()
            entry.jobs_done += 1
            reg = obs.get_registry()
            reg.counter(f"serve.design.{entry.name}.jobs_done").inc()
            return result
        except Exception:
            entry.jobs_failed += 1
            obs.get_registry().counter(f"serve.design.{entry.name}.jobs_failed").inc()
            raise
        finally:
            entry.busy_seconds += time.perf_counter() - t0

    def _recompose_summary(self, entry: DesignEntry, stats, params: dict) -> dict:
        session = entry.session
        result = stats.result
        summary = {
            "incremental": stats.incremental,
            "dirty_registers": stats.dirty_registers,
            "composed": len(result.composed),
            "registers_before": result.registers_before,
            "registers_after": result.registers_after,
            "runtime_seconds": round(result.runtime_seconds, 6),
        }
        if params.get("signatures"):
            # Exact-state digests, so a wire-only client can assert
            # bit-identity without reaching into the process.
            from repro.check.oracles import placement_signature, timing_signature

            summary["placement_digest"] = _digest(
                sorted(placement_signature(session.design).items())
            )
            summary["timing_digest"] = _digest(
                sorted(timing_signature(session.timer).items())
            )
        return summary

    def _run_compose(self, entry: DesignEntry, params: dict) -> dict:
        stats = entry.session.recompose(full=bool(params.get("full", False)))
        return self._recompose_summary(entry, stats, params)

    def _run_eco(self, entry: DesignEntry, params: dict) -> dict:
        session = entry.session
        design = session.design
        applied = 0
        explicit = params.get("cells")
        if explicit is not None:
            if not isinstance(explicit, list):
                raise JobError(ERR_BAD_REQUEST, "'cells' must be a list of moves")
            for move in explicit:
                cell = design.cells.get(str(move.get("cell")))
                if cell is None or not cell.is_register:
                    raise JobError(
                        ERR_BAD_REQUEST,
                        f"unknown or non-register cell {move.get('cell')!r}",
                    )
                x, y = _clamp_to_die(design, cell, float(move["x"]), float(move["y"]))
                with session.edit():
                    design.move_cell(cell, Point(x, y))
                applied += 1
        else:
            # Server-side seeded storm: planned against the *current* world,
            # one register at a time, so the plan never references a cell a
            # previous compose absorbed.  Deterministic given (seed, state).
            moves = int(params.get("moves", 0))
            radius = float(params.get("radius", 3.0))
            rng = random.Random(int(params.get("seed", 0)))
            for _ in range(moves):
                movable = [
                    c
                    for c in design.registers()
                    if not c.fixed and not c.dont_touch
                ]
                if not movable:
                    break
                cell = rng.choice(movable)
                x, y = _clamp_to_die(
                    design,
                    cell,
                    cell.origin.x + rng.uniform(-radius, radius),
                    cell.origin.y + rng.uniform(-radius, radius),
                )
                with session.edit():
                    design.move_cell(cell, Point(x, y))
                applied += 1
        if params.get("inject_fault"):
            # Test/ops hook (mirrors ``repro check --inject-fault``): blow up
            # after the edits committed, before recompose — exactly the shape
            # of a mid-job crash the fault tests must survive.
            raise RuntimeError("injected fault (inject_fault=true)")
        stats = session.recompose(full=bool(params.get("full", False)))
        summary = self._recompose_summary(entry, stats, params)
        summary["moves_applied"] = applied
        return summary

    def _run_check(self, entry: DesignEntry, params: dict) -> dict:
        sleep_s = float(params.get("sleep_s", 0.0))
        if sleep_s > 0:
            # Drain/back-pressure hook: hold the design's worker busy for a
            # bounded while (tests use it to fill the queue deterministically).
            time.sleep(min(sleep_s, 5.0))
        session = entry.session
        violations = check_all(
            session.design, timer=session.timer, scan_model=session.scan_model
        )
        report = format_violations(violations).splitlines()
        return {
            "clean": not violations,
            "violations": len(violations),
            "report": report[:_MAX_VIOLATIONS_REPORTED],
        }

    def stats(self) -> dict:
        data = {name: entry.stats() for name, entry in self._entries.items()}
        out = {"designs": data}
        if self.shared_cache is not None:
            out["shared_cache"] = self.shared_cache.stats()
        return out


def _digest(value) -> str:
    import hashlib

    return hashlib.sha256(repr(value).encode()).hexdigest()


def _clamp_to_die(design, cell, x: float, y: float) -> tuple[float, float]:
    die = design.die
    lib = cell.libcell
    x = min(max(die.xlo, x), die.xhi - lib.width)
    y = min(max(die.ylo, y), die.yhi - lib.height)
    return x, y
