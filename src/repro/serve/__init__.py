"""Compose-as-a-service: an asyncio job server over long-lived sessions.

The ROADMAP's service shape for the paper's incremental composition: a
single-process asyncio front-end (:class:`ComposeServer`) owning a
registry of named designs (:class:`DesignRegistry`), each backed by a
long-lived :class:`~repro.flow.session.EcoSession`, all sharing one
process-wide :class:`SharedComponentCache` so identical components solved
for one request replay for the next — across designs and (with disk
spill) across server restarts.

Entry points: ``repro serve`` / ``repro submit`` on the CLI,
:class:`Client` in-process, :class:`TcpClient` over the JSON-lines wire
protocol (:mod:`repro.serve.protocol`), and ``benchmarks/load_gen.py``
for the deterministic service benchmark.
"""

from repro.serve.cache import SharedComponentCache
from repro.serve.client import Client, TcpClient, drive, submit_stdin_lines
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_JOB_FAILED,
    ERR_QUEUE_FULL,
    ERR_UNKNOWN_DESIGN,
    ERR_UNKNOWN_KIND,
    JOB_KINDS,
    PROTOCOL_SCHEMA,
    JobError,
    JobRequest,
    JobResponse,
    ProtocolError,
)
from repro.serve.registry import DesignEntry, DesignRegistry
from repro.serve.server import ComposeServer

__all__ = [
    "Client",
    "ComposeServer",
    "DesignEntry",
    "DesignRegistry",
    "ERR_BAD_REQUEST",
    "ERR_JOB_FAILED",
    "ERR_QUEUE_FULL",
    "ERR_UNKNOWN_DESIGN",
    "ERR_UNKNOWN_KIND",
    "JOB_KINDS",
    "JobError",
    "JobRequest",
    "JobResponse",
    "PROTOCOL_SCHEMA",
    "ProtocolError",
    "SharedComponentCache",
    "TcpClient",
    "drive",
    "submit_stdin_lines",
]
