"""Clients of the compose service: in-process, TCP, and the drive helper.

:class:`Client` talks straight to a live :class:`~repro.serve.server.ComposeServer`
on the same event loop — the form tests and the load generator use.
:class:`TcpClient` is a small blocking JSON-lines socket client for the
``repro submit`` CLI (and for exercising the real wire path in tests).

:func:`drive` fans a deterministic global job list over N client lanes
while preserving per-design submission order: lanes pull from one shared
deque and ``ComposeServer.submit`` enqueues before its first ``await``,
so the enqueue order per design equals the pull order — which is why a
concurrent run is bit-identical to a serial one.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from collections import deque
from typing import Iterable

from repro.serve.protocol import (
    PROTOCOL_SCHEMA,
    JobRequest,
    JobResponse,
    ProtocolError,
    decode_line,
    encode_line,
)


class Client:
    """In-process client: submits straight into the server's loop."""

    def __init__(self, server, name: str = "local") -> None:
        self.server = server
        self.name = name
        self._seq = 0

    def _next_id(self) -> str:
        self._seq += 1
        return f"{self.name}-{self._seq}"

    async def submit(
        self,
        kind: str,
        design: str | None = None,
        params: dict | None = None,
        job_id: str | None = None,
    ) -> JobResponse:
        request = JobRequest(
            kind=kind,
            design=design,
            params=params or {},
            id=self._next_id() if job_id is None else job_id,
        )
        return await self.server.submit(request)

    async def submit_request(self, request: JobRequest) -> JobResponse:
        return await self.server.submit(request)


class TcpClient:
    """Blocking JSON-lines client over one TCP connection."""

    def __init__(self, host: str, port: int, timeout: float = 300.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._seq = 0

    def submit(
        self,
        kind: str,
        design: str | None = None,
        params: dict | None = None,
        job_id: str | None = None,
    ) -> JobResponse:
        self._seq += 1
        request = JobRequest(
            kind=kind,
            design=design,
            params=params or {},
            id=f"tcp-{self._seq}" if job_id is None else job_id,
        )
        return self.submit_request(request)

    def submit_request(self, request: JobRequest) -> JobResponse:
        self._file.write(encode_line(request.to_wire()))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return JobResponse.from_wire(decode_line(line))

    def send_raw(self, line: bytes) -> dict:
        """Ship arbitrary bytes (protocol tests); returns the raw response."""
        self._file.write(line)
        self._file.flush()
        reply = self._file.readline()
        if not reply:
            raise ConnectionError("server closed the connection")
        return decode_line(reply)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "TcpClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


async def drive(
    server,
    jobs: Iterable[JobRequest],
    clients: int = 1,
    client_name: str = "gen",
) -> tuple[dict[str, JobResponse], list[float]]:
    """Submit ``jobs`` through ``clients`` concurrent lanes.

    Returns ``(responses by job id, per-job wall latencies in seconds)``.
    The job list's *relative order per design* is preserved no matter how
    many lanes run (see the module docstring), so the same list replayed
    with ``clients=1`` and ``clients=8`` drives every design through the
    identical job sequence.
    """
    work = deque(jobs)
    responses: dict[str, JobResponse] = {}
    latencies: list[float] = []

    async def lane() -> None:
        while True:
            try:
                request = work.popleft()
            except IndexError:
                return
            t0 = time.perf_counter()
            response = await server.submit(request)
            latencies.append(time.perf_counter() - t0)
            responses[request.id] = response

    await asyncio.gather(*(lane() for _ in range(max(1, clients))))
    return responses, latencies


def submit_stdin_lines(client: TcpClient, lines: Iterable[str]) -> Iterable[dict]:
    """CLI helper: each input line is one request frame; yields responses."""
    for line in lines:
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        data.setdefault("schema", PROTOCOL_SCHEMA)
        try:
            request = JobRequest.from_wire(data)
        except ProtocolError as exc:
            yield {"ok": False, "error": {"code": "bad_request", "message": str(exc)}}
            continue
        yield client.submit_request(request).to_wire()
