"""The asyncio front-end: admission, back-pressure, per-design workers.

One event loop owns everything light — socket framing, validation,
queueing — and hands the heavy synchronous work (the composition jobs of
:meth:`~repro.serve.registry.DesignRegistry.run_job`) to a thread pool,
one in-flight job per design at a time:

* **Admission** is bounded by ``queue_depth`` across the whole server.
  A submit that would exceed it is rejected *immediately* with the typed
  ``queue_full`` error (and a top-level ``rejected`` marker on the wire)
  — back-pressure is explicit, never an unbounded buffer.  ``status``
  jobs bypass the queue: they read counters only and answer inline, so
  a saturated server can still be observed.
* **Ordering**: each design has a FIFO queue drained by one worker
  coroutine; jobs for the same design serialize in *submission order*,
  jobs for different designs overlap on the thread pool (and further fan
  out across the existing ``ProcessPoolExecutor`` of the solve stage
  when ``ComposerConfig.workers > 1``).  ``submit`` enqueues
  synchronously before its first ``await`` — callers that submit in a
  deterministic order get deterministic per-design execution order,
  which is what makes concurrent serving bit-identical to serial.
* **Faults**: a handler exception fails that job only (typed
  ``job_failed`` response); the worker, the session, and the queue keep
  going.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.serve.protocol import (
    ERR_JOB_FAILED,
    ERR_QUEUE_FULL,
    ERR_UNKNOWN_DESIGN,
    ERR_UNKNOWN_KIND,
    JOB_KINDS,
    JobError,
    JobRequest,
    JobResponse,
    ProtocolError,
    decode_line,
    encode_line,
)
from repro.serve.registry import DesignRegistry


class ComposeServer:
    """A bounded-queue job server over a :class:`DesignRegistry`."""

    def __init__(
        self,
        registry: DesignRegistry,
        queue_depth: int = 64,
        executor_threads: int | None = None,
    ) -> None:
        self.registry = registry
        self.queue_depth = queue_depth
        self._threads = executor_threads or max(2, len(registry))
        self._executor: ThreadPoolExecutor | None = None
        self._queues: dict[str, asyncio.Queue] = {}
        self._workers: list[asyncio.Task] = []
        self._inflight = 0
        self._started = False
        self._tcp_server: asyncio.AbstractServer | None = None
        self.started_unix = time.time()
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_rejected = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the per-design workers (idempotent)."""
        if self._started:
            return
        self._executor = ThreadPoolExecutor(
            max_workers=self._threads, thread_name_prefix="repro-serve"
        )
        loop = asyncio.get_running_loop()
        for name in self.registry.names():
            queue: asyncio.Queue = asyncio.Queue()
            self._queues[name] = queue
            self._workers.append(loop.create_task(self._design_worker(name, queue)))
        self._started = True

    async def serve(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Additionally open the TCP listener; returns the bound address."""
        await self.start()
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sock = self._tcp_server.sockets[0]
        addr = sock.getsockname()
        return addr[0], addr[1]

    async def aclose(self) -> None:
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []
        self._queues = {}
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._started = False

    # -- submission ---------------------------------------------------------

    async def submit(self, request: JobRequest) -> JobResponse:
        """Validate, admit, and await one job.

        The rejection/enqueue decision and the enqueue itself happen
        *before* the first ``await`` — submission order is queue order.
        """
        if request.kind not in JOB_KINDS:
            return JobResponse.failure(
                request,
                ERR_UNKNOWN_KIND,
                f"unknown kind {request.kind!r} (valid: {', '.join(JOB_KINDS)})",
            )
        if request.kind == "status" and request.design is None:
            return JobResponse.success(request, self.stats())
        if request.design is None or request.design not in self.registry:
            return JobResponse.failure(
                request,
                ERR_UNKNOWN_DESIGN,
                f"unknown design {request.design!r} "
                f"(registered: {', '.join(self.registry.names()) or 'none'})",
            )
        if request.kind == "status":
            return JobResponse.success(
                request, self.registry.entry(request.design).stats()
            )
        if not self._started:
            await self.start()
        if self._inflight >= self.queue_depth:
            self.jobs_rejected += 1
            obs.get_registry().counter("serve.jobs.rejected").inc()
            return JobResponse.failure(
                request,
                ERR_QUEUE_FULL,
                f"queue full ({self._inflight}/{self.queue_depth} jobs in flight)",
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight += 1
        obs.get_registry().gauge("serve.queue.inflight").set(self._inflight)
        self._queues[request.design].put_nowait((request, future))
        return await future

    # -- internals ----------------------------------------------------------

    async def _design_worker(self, name: str, queue: asyncio.Queue) -> None:
        loop = asyncio.get_running_loop()
        while True:
            request, future = await queue.get()
            try:
                response = await loop.run_in_executor(
                    self._executor, self._run_job, request
                )
            except asyncio.CancelledError:
                if not future.done():
                    future.cancel()
                raise
            finally:
                self._inflight -= 1
                obs.get_registry().gauge("serve.queue.inflight").set(self._inflight)
            if response.ok:
                self.jobs_done += 1
            else:
                self.jobs_failed += 1
            if not future.done():
                future.set_result(response)

    def _run_job(self, request: JobRequest) -> JobResponse:
        """Thread-side execution: typed failures stay typed, anything else
        becomes ``job_failed`` — for this job only."""
        try:
            return JobResponse.success(request, self.registry.run_job(request))
        except JobError as exc:
            return JobResponse.failure(request, exc.code, str(exc))
        except Exception as exc:
            obs.get_registry().counter("serve.jobs.failed").inc()
            return JobResponse.failure(
                request, ERR_JOB_FAILED, f"{type(exc).__name__}: {exc}"
            )

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One JSON-lines client; requests may pipeline, responses carry the
        request id (completion order — same-design requests keep their
        submission order through the design queue)."""
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()

        async def answer(line: bytes) -> None:
            try:
                request = JobRequest.from_wire(decode_line(line))
            except ProtocolError as exc:
                response = JobResponse(
                    id="", kind="?", ok=False, error_code="bad_request", error=str(exc)
                )
            else:
                response = await self.submit(request)
            async with write_lock:
                writer.write(encode_line(response.to_wire()))
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.get_running_loop().create_task(answer(line))
                pending.add(task)
                task.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        data = {
            "uptime_seconds": round(time.time() - self.started_unix, 3),
            "queue_depth": self.queue_depth,
            "inflight": self._inflight,
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "jobs_rejected": self.jobs_rejected,
            "threads": self._threads,
        }
        data.update(self.registry.stats())
        return data

    def build_manifest(self) -> dict:
        """The run's durable record (validated ``repro.obs.manifest/1``)."""
        return obs.build_manifest(
            design={"name": "repro.serve", "designs": self.registry.names()},
            config={
                "queue_depth": self.queue_depth,
                "threads": self._threads,
                "composer_workers": self.registry.config.workers,
            },
            flow=self.stats(),
        )
