"""Process-wide component cache shared across designs and server runs.

This promotes the per-session ``component_digest`` memo of
:class:`~repro.core.composer.CompositionCache` to a process-wide tier:
every :class:`~repro.flow.session.EcoSession` the server owns writes its
freshly solved components here and reads other sessions' components back
— identical components solved for one request replay for the next,
across designs (same library/die/config namespace) and, with disk spill
enabled, across server restarts.

Entries are held in memory under an LRU budget bounded by **both** entry
count and encoded byte size (the same discipline
``CompositionCache`` applies locally), with eviction counters.  When a
``spill_dir`` is configured, every entry is also written through to a
digest-named file carrying the versioned
:data:`~repro.core.composer.ENTRY_CODEC_SCHEMA` payload; a memory miss
falls back to the spill tier.  A spill file that fails to decode for any
reason — truncation, corruption, schema mismatch, a cell name unknown to
the live library, a digest that does not match its file name — is
deleted and treated as a miss, never trusted.

Thread safety: all state is guarded by one lock.  Server jobs run on
worker threads (one per design), so concurrent gets/puts are the normal
case, not the exception.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict

from repro import obs
from repro.core.composer import ComponentCache, entry_blob, entry_from_blob

#: Spill file suffix; the content is an ``entry_blob`` (schema-tagged pickle).
SPILL_SUFFIX = ".comp"


class SharedComponentCache:
    """An LRU byte/entry-budgeted component store shared by many sessions.

    ``get``/``put`` are keyed by ``(namespace, digest)`` — the namespace
    (see :func:`~repro.flow.session.cache_namespace`) carries the
    library/die/config state that :func:`~repro.core.composer.component_digest`
    deliberately leaves out.  ``library`` must be passed to ``get`` so
    spilled entries can rebind their cells by name against the live
    :class:`~repro.library.library.CellLibrary`.
    """

    def __init__(
        self,
        max_entries: int = 65536,
        max_bytes: int = 256 * 1024 * 1024,
        spill_dir: str | None = None,
    ) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.spill_dir = spill_dir
        self.total_bytes = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, tuple[ComponentCache, int]]" = OrderedDict()
        if spill_dir is not None:
            os.makedirs(spill_dir, exist_ok=True)

    # -- keys and files -----------------------------------------------------

    @staticmethod
    def _key(namespace: str, digest: str) -> str:
        return f"{namespace}|{digest}"

    def _spill_path(self, namespace: str, digest: str) -> str:
        ns = hashlib.sha256(namespace.encode()).hexdigest()[:12]
        return os.path.join(self.spill_dir, f"{ns}-{digest}{SPILL_SUFFIX}")

    # -- the cache protocol -------------------------------------------------

    def get(self, digest: str, namespace: str = "", library=None):
        """Look up one component; memory first, then the spill tier."""
        key = self._key(namespace, digest)
        with self._lock:
            hit = self._entries.get(key)
            if hit is not None:
                self._entries.move_to_end(key)
                obs.get_registry().counter("serve.shared_cache.hits").inc()
                return hit[0]
        entry = self._load_spilled(digest, namespace, library)
        if entry is not None:
            obs.get_registry().counter("serve.shared_cache.hits").inc()
            obs.get_registry().counter("serve.shared_cache.spill_loads").inc()
            # Adopt into memory so the next lookup skips the disk.
            self.put(entry, namespace=namespace)
            return entry
        obs.get_registry().counter("serve.shared_cache.misses").inc()
        return None

    def put(self, entry: ComponentCache, namespace: str = "", blob: bytes | None = None) -> None:
        """Insert (or refresh) one component; write through to the spill."""
        if blob is None:
            blob = entry_blob(entry)
        key = self._key(namespace, entry.digest)
        evicted = 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.total_bytes -= old[1]
            self._entries[key] = (entry, len(blob))
            self.total_bytes += len(blob)
            while len(self._entries) > 1 and (
                len(self._entries) > self.max_entries
                or self.total_bytes > self.max_bytes
            ):
                _, (_, nbytes) = self._entries.popitem(last=False)
                self.total_bytes -= nbytes
                evicted += 1
        if evicted:
            obs.get_registry().counter("serve.shared_cache.evictions").inc(evicted)
        if self.spill_dir is not None and old is None:
            self._write_spilled(entry.digest, namespace, blob)

    # -- spill tier ---------------------------------------------------------

    def _write_spilled(self, digest: str, namespace: str, blob: bytes) -> None:
        path = self._spill_path(namespace, digest)
        if os.path.exists(path):
            return
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
            obs.get_registry().counter("serve.shared_cache.spill_writes").inc()
        except OSError:
            obs.get_registry().counter("serve.shared_cache.spill_errors").inc()
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _load_spilled(self, digest: str, namespace: str, library):
        if self.spill_dir is None or library is None:
            return None
        path = self._spill_path(namespace, digest)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        try:
            entry = entry_from_blob(blob, library)
            if entry.digest != digest:
                raise ValueError(
                    f"spill digest mismatch: {entry.digest} != {digest}"
                )
        except Exception:
            # Damaged, truncated, stale-schema, or foreign content: the
            # file is evidence of nothing.  Remove it and miss.
            obs.get_registry().counter("serve.shared_cache.spill_discards").inc()
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        return entry

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict:
        """Counter snapshot plus occupancy, for status jobs and manifests."""
        counters = obs.get_registry().snapshot().get("counters", {})
        with self._lock:
            occupancy = {
                "entries": len(self._entries),
                "bytes": self.total_bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "spill_dir": self.spill_dir,
            }
        prefix = "serve.shared_cache."
        occupancy.update(
            {
                name[len(prefix):]: value
                for name, value in counters.items()
                if name.startswith(prefix)
            }
        )
        return occupancy
