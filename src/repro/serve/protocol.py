"""The wire protocol of the compose service: JSON lines, typed errors.

One request and one response per line (UTF-8 JSON, ``\\n``-terminated) —
the framing is trivial on purpose: any language with a socket and a JSON
parser is a client.  The schema is versioned
(:data:`PROTOCOL_SCHEMA`); responses echo the request ``id`` so a client
may pipeline many requests over one connection.

Request::

    {"schema": "repro.serve.job/1", "id": "c0-3", "kind": "eco",
     "design": "D1-0", "params": {"seed": 7, "moves": 2, "radius": 3.0}}

Success response::

    {"schema": "repro.serve.job/1", "id": "c0-3", "ok": true,
     "kind": "eco", "design": "D1-0", "result": {...}}

Failure response (typed)::

    {"schema": "repro.serve.job/1", "id": "c0-3", "ok": false,
     "kind": "eco", "design": "D1-0",
     "error": {"code": "queue_full", "message": "..."},
     "rejected": "queue_full"}

Error codes: ``bad_request`` (malformed frame or params),
``unknown_design``, ``unknown_kind``, ``queue_full`` (back-pressure;
also surfaced as a top-level ``rejected`` marker), and ``job_failed``
(the job raised inside the session — that job only; the session stays
consistent and subsequent jobs proceed).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

PROTOCOL_SCHEMA = "repro.serve.job/1"

JOB_KINDS = ("compose", "eco", "check", "status")

#: Typed error codes a response may carry.
ERR_BAD_REQUEST = "bad_request"
ERR_UNKNOWN_DESIGN = "unknown_design"
ERR_UNKNOWN_KIND = "unknown_kind"
ERR_QUEUE_FULL = "queue_full"
ERR_JOB_FAILED = "job_failed"


class ProtocolError(ValueError):
    """A frame that cannot be interpreted as a job request."""


class JobError(RuntimeError):
    """A typed failure raised by a job handler (carries its wire code)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class JobRequest:
    """One validated job submission."""

    kind: str
    design: str | None = None
    params: dict = field(default_factory=dict)
    id: str = ""

    @classmethod
    def from_wire(cls, data: dict) -> "JobRequest":
        if not isinstance(data, dict):
            raise ProtocolError(f"request must be an object, got {type(data).__name__}")
        schema = data.get("schema", PROTOCOL_SCHEMA)
        if schema != PROTOCOL_SCHEMA:
            raise ProtocolError(f"unknown schema {schema!r} (want {PROTOCOL_SCHEMA!r})")
        kind = data.get("kind")
        if not isinstance(kind, str) or not kind:
            raise ProtocolError("request needs a string 'kind'")
        design = data.get("design")
        if design is not None and not isinstance(design, str):
            raise ProtocolError("'design' must be a string when present")
        params = data.get("params", {})
        if not isinstance(params, dict):
            raise ProtocolError("'params' must be an object when present")
        job_id = data.get("id", "")
        if not isinstance(job_id, str):
            job_id = str(job_id)
        return cls(kind=kind, design=design, params=params, id=job_id)

    def to_wire(self) -> dict:
        data = {"schema": PROTOCOL_SCHEMA, "id": self.id, "kind": self.kind}
        if self.design is not None:
            data["design"] = self.design
        if self.params:
            data["params"] = self.params
        return data


@dataclass
class JobResponse:
    """One job outcome, success or typed failure."""

    id: str
    kind: str
    ok: bool
    design: str | None = None
    result: dict = field(default_factory=dict)
    error_code: str | None = None
    error: str | None = None

    @property
    def rejected(self) -> bool:
        return self.error_code == ERR_QUEUE_FULL

    @classmethod
    def success(cls, request: JobRequest, result: dict) -> "JobResponse":
        return cls(
            id=request.id,
            kind=request.kind,
            ok=True,
            design=request.design,
            result=result,
        )

    @classmethod
    def failure(cls, request: JobRequest, code: str, message: str) -> "JobResponse":
        return cls(
            id=request.id,
            kind=request.kind,
            ok=False,
            design=request.design,
            error_code=code,
            error=message,
        )

    @classmethod
    def from_wire(cls, data: dict) -> "JobResponse":
        error = data.get("error") or {}
        return cls(
            id=str(data.get("id", "")),
            kind=str(data.get("kind", "")),
            ok=bool(data.get("ok")),
            design=data.get("design"),
            result=data.get("result") or {},
            error_code=error.get("code"),
            error=error.get("message"),
        )

    def to_wire(self) -> dict:
        data = {
            "schema": PROTOCOL_SCHEMA,
            "id": self.id,
            "ok": self.ok,
            "kind": self.kind,
        }
        if self.design is not None:
            data["design"] = self.design
        if self.ok:
            data["result"] = self.result
        else:
            data["error"] = {"code": self.error_code, "message": self.error}
            if self.rejected:
                data["rejected"] = self.error_code
        return data


def encode_line(data: dict) -> bytes:
    """One wire frame: compact JSON plus the line terminator."""
    return json.dumps(data, separators=(",", ":"), sort_keys=False).encode() + b"\n"


def decode_line(line: bytes) -> dict:
    try:
        data = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(data, dict):
        raise ProtocolError(f"frame must be an object, got {type(data).__name__}")
    return data
