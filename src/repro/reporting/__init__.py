"""Text rendering of experiment results (Table 1 / Figs. 5-6 style)."""

from repro.reporting.tables import (
    format_fig5_histograms,
    format_fig6_comparison,
    format_stage_counters,
    format_stage_runtimes,
    format_table1,
)

__all__ = [
    "format_table1",
    "format_fig5_histograms",
    "format_fig6_comparison",
    "format_stage_counters",
    "format_stage_runtimes",
]
