"""Plain-text tables mirroring the paper's Table 1 and Figs. 5-6."""

from __future__ import annotations

from repro.engine import format_counter_value
from repro.flow.driver import FlowReport

_COLUMNS = [
    ("Area (um2)", lambda m: f"{m.area:.0f}"),
    ("Cells", lambda m: f"{m.total_cells}"),
    ("TotRegs", lambda m: f"{m.total_regs}"),
    ("CompRegs", lambda m: f"{m.comp_regs}"),
    ("ClkBufs", lambda m: f"{m.clk_bufs}"),
    ("ClkCap(pF)", lambda m: f"{m.clk_cap:.3f}"),
    ("TNS(ns)", lambda m: f"{m.tns:.1f}"),
    ("FailEP", lambda m: f"{m.failing_endpoints}"),
    ("OvflEdg", lambda m: f"{m.overflow_edges}"),
    ("WL-Clk", lambda m: f"{m.wirelength_clk:.0f}"),
    ("WL-Other", lambda m: f"{m.wirelength_other:.0f}"),
    ("Time(s)", lambda m: f"{m.exec_time_s:.1f}"),
]

_SAVE_KEYS = [
    "area",
    "total_cells",
    "total_regs",
    "comp_regs",
    "clk_bufs",
    "clk_cap",
    "tns",
    "failing_endpoints",
    "overflow_edges",
    "wirelength_clk",
    "wirelength_other",
    None,
]


def format_table1(reports: list[FlowReport]) -> str:
    """Render flow reports as the paper's Table 1: per design a Base row,
    an Ours row, and a Save row of relative reductions."""
    headers = ["Design", "Row"] + [name for name, _ in _COLUMNS]
    rows: list[list[str]] = []
    for rep in reports:
        rows.append([rep.design_name, "Base"] + [fmt(rep.base) for _, fmt in _COLUMNS])
        rows.append(["", "Ours"] + [fmt(rep.final) for _, fmt in _COLUMNS])
        savings = rep.savings
        save_row = ["", "Save"]
        for key in _SAVE_KEYS:
            save_row.append("" if key is None else f"{100 * savings[key]:.1f}%")
        rows.append(save_row)
    return _render(headers, rows)


def format_stage_runtimes(reports: list[FlowReport]) -> str:
    """Per-stage runtime columns for the Table 1 designs: one row per
    design, one column per flow pipeline stage (aggregated over repeats;
    the composer's sub-stages are contained in the ``compose`` column —
    print ``report.trace.format()`` for the nested breakdown)."""
    names: list[str] = []
    for rep in reports:
        if rep.trace is None:
            continue
        for name in rep.trace.stage_names():
            if name not in names:
                names.append(name)
    headers = ["Design"] + names + ["Total(s)"]
    rows = []
    for rep in reports:
        agg = rep.trace.aggregated() if rep.trace is not None else {}
        rows.append(
            [rep.design_name]
            + [f"{agg.get(name, 0.0):.2f}" for name in names]
            + [f"{rep.runtime_seconds:.2f}"]
        )
    return _render(headers, rows)


def format_stage_counters(reports: list[FlowReport]) -> str:
    """Per-design counter totals over the whole trace tree (nested compose
    stages included), one line per design.

    Integer counters render without a decimal point (``ilp_nodes=4420``),
    floats compactly — the int-vs-float display policy lives in
    :func:`repro.engine.format_counter_value`.
    """
    lines: list[str] = []
    for rep in reports:
        totals: dict[str, int | float] = {}

        def visit(trace) -> None:
            for rec in trace.records:
                for key, value in rec.counters.items():
                    totals[key] = totals.get(key, 0) + value
                if rec.children is not None:
                    visit(rec.children)

        if rep.trace is not None:
            visit(rep.trace)
        body = " ".join(
            f"{k}={format_counter_value(v)}" for k, v in sorted(totals.items())
        )
        lines.append(f"{rep.design_name}: {body}")
    return "\n".join(lines)


def format_fig5_histograms(reports: list[FlowReport]) -> str:
    """Fig. 5: register bit-width mix before and after composition."""
    widths = sorted(
        {w for rep in reports for w in rep.base.width_histogram}
        | {w for rep in reports for w in rep.final.width_histogram}
    )
    headers = ["Design", "Row"] + [f"{w}-bit" for w in widths] + ["Total"]
    rows = []
    for rep in reports:
        for label, hist in (("Before", rep.base.width_histogram), ("After", rep.final.width_histogram)):
            counts = [hist.get(w, 0) for w in widths]
            rows.append(
                [rep.design_name if label == "Before" else "", label]
                + [str(c) for c in counts]
                + [str(sum(counts))]
            )
    return _render(headers, rows)


def format_fig6_comparison(
    ilp_reports: list[FlowReport], heuristic_reports: list[FlowReport]
) -> str:
    """Fig. 6: total registers after composition, normalized to the
    heuristic baseline (lower is better; the paper reports the ILP winning
    on every design, ~12% average savings)."""
    headers = ["Design", "Base regs", "Heuristic", "ILP", "ILP/Heur"]
    rows = []
    ratios = []
    for ilp, heur in zip(ilp_reports, heuristic_reports):
        ratio = ilp.final.total_regs / heur.final.total_regs if heur.final.total_regs else 1.0
        ratios.append(ratio)
        rows.append(
            [
                ilp.design_name,
                str(ilp.base.total_regs),
                str(heur.final.total_regs),
                str(ilp.final.total_regs),
                f"{ratio:.3f}",
            ]
        )
    if ratios:
        rows.append(["average", "", "", "", f"{sum(ratios) / len(ratios):.3f}"])
    return _render(headers, rows)


def _render(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
