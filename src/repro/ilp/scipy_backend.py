"""Optional SciPy (HiGHS) backends mirroring the pure-Python solvers.

Used in tests to validate :mod:`repro.ilp.simplex` and
:mod:`repro.ilp.setpart` against an industrial-strength implementation,
and available as alternative engines in the composition flow.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.ilp.setpart import SetPartitionProblem, SetPartitionSolution
from repro.ilp.simplex import LPResult, LPStatus


def scipy_available() -> bool:
    try:
        from scipy.optimize import linprog, milp  # noqa: F401

        return True
    except ImportError:  # pragma: no cover - scipy is a hard dependency here
        return False


def solve_lp_scipy(c, A_ub=None, b_ub=None, A_eq=None, b_eq=None, bounds=None) -> LPResult:
    """:func:`repro.ilp.simplex.solve_lp`-compatible wrapper over HiGHS."""
    from scipy.optimize import linprog

    obs.get_registry().counter("ilp.scipy.lp_solves").inc()
    n = np.asarray(c).size
    res = linprog(
        c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=bounds if bounds is not None else [(0, None)] * n,
        method="highs",
    )
    if res.status == 2:
        return LPResult(LPStatus.INFEASIBLE, None, None)
    if res.status == 3:
        return LPResult(LPStatus.UNBOUNDED, None, None)
    if not res.success:  # pragma: no cover - unexpected solver failure
        raise RuntimeError(f"linprog failed: {res.message}")
    return LPResult(LPStatus.OPTIMAL, np.asarray(res.x), float(res.fun))


def solve_set_partition_scipy(problem: SetPartitionProblem) -> SetPartitionSolution:
    """Solve a set-partitioning instance with ``scipy.optimize.milp``."""
    from scipy.optimize import LinearConstraint, milp
    from scipy.sparse import lil_matrix

    obs.get_registry().counter("ilp.scipy.milp_solves").inc()

    k = len(problem.subsets)
    A = lil_matrix((problem.n_elements, k))
    for i, subset in enumerate(problem.subsets):
        for e in subset:
            A[e, i] = 1.0
    constraint = LinearConstraint(A.tocsr(), lb=1.0, ub=1.0)
    res = milp(
        c=np.asarray(problem.weights, dtype=float),
        integrality=np.ones(k),
        bounds=(0, 1),
        constraints=[constraint],
    )
    if not res.success:
        return SetPartitionSolution(feasible=False, objective=0.0)
    chosen = [i for i, v in enumerate(res.x) if v > 0.5]
    return SetPartitionSolution(
        chosen=chosen,
        objective=float(sum(problem.weights[i] for i in chosen)),
        feasible=True,
    )
