"""A dense two-phase primal simplex.

Solves  ``min c.x  s.t.  A_ub x <= b_ub,  A_eq x = b_eq,  lb <= x <= ub``.

Design notes:

* variables are shifted by their lower bounds to standard form ``x >= 0``;
  finite upper bounds become additional ``<=`` rows (simple, and fine at the
  problem sizes the composition flow produces);
* phase 1 drives artificial variables out of the basis; phase 2 optimizes;
* Bland's smallest-index rule guarantees termination under degeneracy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro import obs

_EPS = 1e-9


class LPStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class LPResult:
    status: LPStatus
    x: np.ndarray | None
    objective: float | None
    pivots: int = 0
    """Simplex pivots performed across both phases (solver effort)."""

    @property
    def ok(self) -> bool:
        return self.status is LPStatus.OPTIMAL


def solve_lp(
    c,
    A_ub=None,
    b_ub=None,
    A_eq=None,
    b_eq=None,
    bounds: list[tuple[float | None, float | None]] | None = None,
) -> LPResult:
    """Solve a linear program; see module docstring for the form.

    ``bounds`` defaults to ``(0, None)`` per variable, matching the common
    convention.  ``None`` means unbounded on that side; a ``None`` lower
    bound is handled with the usual free-variable split.
    """
    c = np.asarray(c, dtype=float)
    n = c.size
    bounds = bounds if bounds is not None else [(0.0, None)] * n
    if len(bounds) != n:
        raise ValueError("bounds length does not match variable count")

    A_ub = np.zeros((0, n)) if A_ub is None else np.atleast_2d(np.asarray(A_ub, dtype=float))
    b_ub = np.zeros(0) if b_ub is None else np.atleast_1d(np.asarray(b_ub, dtype=float))
    A_eq = np.zeros((0, n)) if A_eq is None else np.atleast_2d(np.asarray(A_eq, dtype=float))
    b_eq = np.zeros(0) if b_eq is None else np.atleast_1d(np.asarray(b_eq, dtype=float))

    # Variable transformation: x_j = lb_j + u_j (u_j >= 0), or for free
    # variables x_j = u_j - v_j with u, v >= 0.
    col_map: list[tuple[int, float, int]] = []  # (u column, shift, v column or -1)
    ncols = 0
    shifts = np.zeros(n)
    extra_ub_rows: list[tuple[int, float]] = []  # (variable index, ub - lb)
    for j, (lo, hi) in enumerate(bounds):
        if lo is None:
            col_map.append((ncols, 0.0, ncols + 1))
            ncols += 2
            if hi is not None:
                extra_ub_rows.append((j, hi))
        else:
            shifts[j] = lo
            col_map.append((ncols, lo, -1))
            ncols += 1
            if hi is not None:
                if hi < lo - _EPS:
                    return LPResult(LPStatus.INFEASIBLE, None, None)
                extra_ub_rows.append((j, hi - lo))

    def expand(matrix: np.ndarray) -> np.ndarray:
        out = np.zeros((matrix.shape[0], ncols))
        for j in range(n):
            u, _, v = col_map[j]
            out[:, u] = matrix[:, j]
            if v >= 0:
                out[:, v] = -matrix[:, j]
        return out

    # Shift right-hand sides by A @ lb.
    b_ub_s = b_ub - A_ub @ shifts if A_ub.size else b_ub.copy()
    b_eq_s = b_eq - A_eq @ shifts if A_eq.size else b_eq.copy()

    Aub_x = expand(A_ub) if A_ub.size else np.zeros((0, ncols))
    Aeq_x = expand(A_eq) if A_eq.size else np.zeros((0, ncols))

    # Upper-bound rows u_j <= hi - lo (or x_j <= hi for free variables).
    if extra_ub_rows:
        rows = np.zeros((len(extra_ub_rows), ncols))
        rhs = np.zeros(len(extra_ub_rows))
        for i, (j, cap) in enumerate(extra_ub_rows):
            u, _, v = col_map[j]
            rows[i, u] = 1.0
            if v >= 0:
                rows[i, v] = -1.0
            rhs[i] = cap
        Aub_x = np.vstack([Aub_x, rows])
        b_ub_s = np.concatenate([b_ub_s, rhs])

    c_x = np.zeros(ncols)
    for j in range(n):
        u, _, v = col_map[j]
        c_x[u] = c[j]
        if v >= 0:
            c_x[v] = -c[j]

    x_std, pivots = _two_phase_simplex(c_x, Aub_x, b_ub_s, Aeq_x, b_eq_s)
    reg = obs.get_registry()
    reg.counter("ilp.simplex.solves").inc()
    reg.counter("ilp.simplex.pivots").inc(pivots)
    if isinstance(x_std, LPStatus):
        return LPResult(x_std, None, None, pivots)

    x = np.zeros(n)
    for j in range(n):
        u, shift, v = col_map[j]
        x[j] = shift + x_std[u] - (x_std[v] if v >= 0 else 0.0)
    return LPResult(LPStatus.OPTIMAL, x, float(c @ x), pivots)


def _two_phase_simplex(c, A_ub, b_ub, A_eq, b_eq):
    """Simplex over standard-form data with x >= 0; returns ``(solution,
    pivots)`` where the solution is a vector over the expanded columns or
    an :class:`LPStatus` failure."""
    pivots = 0
    m_ub, m_eq = A_ub.shape[0], A_eq.shape[0]
    n = c.size
    m = m_ub + m_eq

    # Rows: [A_ub | I_slack | artificials?] and [A_eq | 0 | artificials].
    A = np.zeros((m, n + m_ub))
    b = np.concatenate([b_ub, b_eq])
    if m_ub:
        A[:m_ub, :n] = A_ub
        A[:m_ub, n : n + m_ub] = np.eye(m_ub)
    if m_eq:
        A[m_ub:, :n] = A_eq

    # Normalize to b >= 0.
    for i in range(m):
        if b[i] < 0:
            A[i] *= -1.0
            b[i] *= -1.0

    total = n + m_ub
    # Artificial variables for every row (slack columns of flipped <= rows
    # would enter with -1, so a uniform artificial basis is simplest).
    art = np.eye(m)
    T = np.hstack([A, art])
    basis = list(range(total, total + m))

    # Phase 1.
    cost1 = np.concatenate([np.zeros(total), np.ones(m)])
    sol, n_piv = _iterate(T, b, cost1, basis)
    pivots += n_piv
    if sol is LPStatus.UNBOUNDED:  # pragma: no cover - phase 1 is bounded
        return LPStatus.INFEASIBLE, pivots
    obj1 = sum(cost1[j] * v for j, v in zip(basis, sol))
    if obj1 > 1e-7:
        return LPStatus.INFEASIBLE, pivots

    # Drive leftover artificials out of the basis when possible.
    for i, j in enumerate(basis):
        if j >= total:
            pivot_col = next(
                (k for k in range(total) if abs(T[i, k]) > _EPS), None
            )
            if pivot_col is not None:
                _pivot(T, b, i, pivot_col, basis)

    # Phase 2 (artificial columns frozen at zero).
    cost2 = np.concatenate([c, np.zeros(m_ub), np.zeros(m)])
    T2 = T.copy()
    T2[:, total:] = 0.0  # forbid artificials from re-entering
    for i, j in enumerate(basis):
        if j >= total:
            T2[i, j] = 1.0  # keep degenerate artificial basic at zero
    sol, n_piv = _iterate(T2, b, cost2, basis)
    pivots += n_piv
    if sol is LPStatus.UNBOUNDED:
        return LPStatus.UNBOUNDED, pivots

    x = np.zeros(total + m)
    for i, j in enumerate(basis):
        x[j] = sol[i]
    return x[:total], pivots


def _pivot(T, b, row, col, basis) -> None:
    piv = T[row, col]
    T[row] /= piv
    b[row] /= piv
    for i in range(T.shape[0]):
        if i != row and abs(T[i, col]) > _EPS:
            factor = T[i, col]
            T[i] -= factor * T[row]
            b[i] -= factor * b[row]
    basis[row] = col


def _iterate(T, b, cost, basis):
    """Run simplex iterations with Bland's rule until optimal/unbounded;
    returns ``(basic-variable values, pivots performed)``."""
    m = T.shape[0]
    pivots = 0
    while True:
        cb = cost[basis]
        reduced = cost - cb @ T
        entering = next((j for j in range(T.shape[1]) if reduced[j] < -1e-9), None)
        if entering is None:
            return b.copy(), pivots
        ratios = [
            (b[i] / T[i, entering], basis[i], i)
            for i in range(m)
            if T[i, entering] > _EPS
        ]
        if not ratios:
            return LPStatus.UNBOUNDED, pivots
        _, _, leave_row = min(ratios, key=lambda t: (t[0], t[1]))
        _pivot(T, b, leave_row, entering, basis)
        pivots += 1
