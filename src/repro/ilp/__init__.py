"""Linear and integer programming solvers.

The paper's composition step solves a weighted set-partitioning ILP
(Section 3.1) and its MBR placement step solves a small LP (Section 4.2).
Production used an industrial solver; this package provides:

* :mod:`repro.ilp.simplex` — a dense two-phase primal simplex with Bland's
  anti-cycling rule, enough for the placement LPs and LP-relaxation bounds;
* :mod:`repro.ilp.setpart` — an exact branch-and-bound solver specialized
  for weighted set partitioning with bitmask subsets; the compatibility
  subgraphs are capped at 30 registers (Section 3), so exact solving is
  cheap;
* :mod:`repro.ilp.branch_bound` — a generic 0/1 ILP branch-and-bound over
  the simplex relaxation, used to cross-check the specialized solver;
* :mod:`repro.ilp.scipy_backend` — optional HiGHS-backed solvers
  (``scipy.optimize.milp`` / ``linprog``) used in tests to validate the
  pure-Python implementations.
"""

from repro.ilp.simplex import LPResult, LPStatus, solve_lp
from repro.ilp.setpart import (
    SetPartitionProblem,
    SetPartitionSolution,
    WarmStart,
    solve_set_partition,
)
from repro.ilp.branch_bound import solve_binary_program
from repro.ilp.scipy_backend import scipy_available, solve_lp_scipy, solve_set_partition_scipy

__all__ = [
    "LPResult",
    "LPStatus",
    "solve_lp",
    "SetPartitionProblem",
    "SetPartitionSolution",
    "WarmStart",
    "solve_set_partition",
    "solve_binary_program",
    "scipy_available",
    "solve_lp_scipy",
    "solve_set_partition_scipy",
]
