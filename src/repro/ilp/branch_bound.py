"""Generic 0/1 integer programming by branch-and-bound over LP relaxations.

A deliberately simple MILP solver used to cross-check the specialized
set-partition solver and to support ad-hoc binary programs in experiments.
It relaxes each subproblem with :func:`repro.ilp.simplex.solve_lp`, branches
on the most fractional variable, and explores best-bound first.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.ilp.setpart import WarmStart
from repro.ilp.simplex import LPStatus, solve_lp


@dataclass(frozen=True)
class BinaryProgramResult:
    feasible: bool
    x: np.ndarray | None
    objective: float | None
    nodes_explored: int = 0
    nodes_pruned: int = 0
    relaxation_gap: float | None = None
    """Relative gap between the root LP relaxation bound and the integer
    optimum, ``(z* - z_LP) / max(|z*|, 1)`` — 0.0 when the relaxation was
    already integral."""


def solve_binary_program(
    c,
    A_ub=None,
    b_ub=None,
    A_eq=None,
    b_eq=None,
    max_nodes: int = 100_000,
    warm: WarmStart | None = None,
) -> BinaryProgramResult:
    """Solve ``min c.x`` with binary ``x`` under linear constraints.

    ``warm`` carries a feasible objective bound from a previous matching
    solve; it seeds the pruning cutoff only (the warm solution is never
    adopted as the incumbent), so the returned optimum is identical to a
    cold run while provably-dominated subtrees are cut immediately.

    Raises ``RuntimeError`` if ``max_nodes`` subproblems are exhausted
    before proving optimality — a safety valve, not an expected outcome at
    composition problem sizes.
    """
    c = np.asarray(c, dtype=float)
    n = c.size

    counter = itertools.count()
    incumbent: np.ndarray | None = None
    incumbent_obj = float("inf")
    if warm is not None and warm.usable:
        # 2e-9 keeps the effective prune threshold (cutoff - 1e-9) strictly
        # above the true optimum despite summation-order noise in the bound.
        incumbent_obj = warm.bound + 2e-9
        obs.get_registry().counter("ilp.bnb.warmstart_hits").inc()
    nodes = 0
    pruned = 0

    root_bounds: dict[int, int] = {}
    heap: list[tuple[float, int, dict[int, int]]] = []

    def relax(fixed: dict[int, int]):
        bounds = [
            (float(fixed[j]), float(fixed[j])) if j in fixed else (0.0, 1.0)
            for j in range(n)
        ]
        return solve_lp(c, A_ub, b_ub, A_eq, b_eq, bounds)

    root = relax(root_bounds)
    if root.status is LPStatus.INFEASIBLE:
        _publish(1, 0, None)
        return BinaryProgramResult(False, None, None, 1)
    root_bound = root.objective
    heapq.heappush(heap, (root.objective, next(counter), root_bounds))

    while heap:
        lower, _, fixed = heapq.heappop(heap)
        if lower >= incumbent_obj - 1e-9:
            pruned += 1
            continue
        nodes += 1
        if nodes > max_nodes:
            raise RuntimeError("branch-and-bound node limit exceeded")
        res = relax(fixed)
        if not res.ok or res.objective >= incumbent_obj - 1e-9:
            pruned += 1
            continue
        frac_j = _most_fractional(res.x, fixed)
        if frac_j is None:
            x_int = np.round(res.x).astype(float)
            obj = float(c @ x_int)
            if obj < incumbent_obj:
                incumbent, incumbent_obj = x_int, obj
            continue
        for value in (1, 0):
            child = dict(fixed)
            child[frac_j] = value
            heapq.heappush(heap, (res.objective, next(counter), child))

    if incumbent is None:
        _publish(nodes, pruned, None)
        return BinaryProgramResult(False, None, None, nodes, pruned)
    gap = max(0.0, (incumbent_obj - root_bound) / max(abs(incumbent_obj), 1.0))
    _publish(nodes, pruned, gap)
    return BinaryProgramResult(True, incumbent, incumbent_obj, nodes, pruned, gap)


def _publish(nodes: int, pruned: int, gap: float | None) -> None:
    """One registry update per solve (never per node — hot-path rule)."""
    reg = obs.get_registry()
    reg.counter("ilp.bnb.solves").inc()
    reg.counter("ilp.bnb.nodes_explored").inc(nodes)
    reg.counter("ilp.bnb.nodes_pruned").inc(pruned)
    if gap is not None:
        reg.histogram("ilp.bnb.relaxation_gap", obs.FRACTION_BUCKETS).observe(gap)


def _most_fractional(x: np.ndarray, fixed: dict[int, int]) -> int | None:
    best_j, best_frac = None, 1e-6
    for j, v in enumerate(x):
        if j in fixed:
            continue
        frac = abs(v - round(v))
        if frac > best_frac:
            best_j, best_frac = j, frac
    return best_j
