"""Exact weighted set partitioning via branch-and-bound on bitmasks.

The composition ILP (Section 3.1) is

    minimize   sum_i w_i x_i
    subject to for every register j:  sum_i a_ij x_i = 1,   x_i in {0, 1}

— weighted set partitioning of the registers by the candidate MBRs.  The
compatibility subgraphs feeding the ILP never exceed 30 registers
(Section 3), so exact search is fast: we branch on the uncovered element
with the fewest remaining covers, prune with an admissible per-element
share bound, and memoize subproblem optima by uncovered-set bitmask.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs


@dataclass(frozen=True)
class SetPartitionProblem:
    """``subsets[i]`` is the element set of candidate i; ``weights[i]`` its
    cost.  Elements are integers ``0..n_elements-1``."""

    n_elements: int
    subsets: tuple[frozenset[int], ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.subsets) != len(self.weights):
            raise ValueError("subsets and weights must have equal length")
        for s in self.subsets:
            if not s:
                raise ValueError("empty subsets are not allowed")
            if any(e < 0 or e >= self.n_elements for e in s):
                raise ValueError("subset element out of range")


@dataclass
class SetPartitionSolution:
    """Indices of chosen candidates and their total weight."""

    chosen: list[int] = field(default_factory=list)
    objective: float = 0.0
    feasible: bool = True
    nodes_explored: int = 0
    optimal: bool = True
    """False when the node budget ran out: ``chosen`` is the best incumbent
    found, feasible but not proven optimal."""
    nodes_pruned: int = 0
    """Subtrees cut before expansion: share-bound prunes, memo prunes, and
    uncoverable-element prunes combined."""
    warm_pruned: int = 0
    """Subtrees cut by the warm-start cutoff alone — prunes the incumbent
    found so far could not yet justify."""


#: Safety margin added to a warm-start bound before it becomes a pruning
#: cutoff.  A warm bound is the objective of a known-feasible solution
#: summed in *some* order; 1e-9 dominates any float reassociation noise, so
#: the cutoff provably exceeds the true optimum and the search returns the
#: exact solution (same tie-breaks included) a cold run would.
WARM_MARGIN = 1e-9


@dataclass(frozen=True)
class WarmStart:
    """A feasible-solution bound carried over from a matching instance.

    Bound-only by design: the branch-and-bound *never* adopts the warm
    solution as its incumbent — it only uses ``bound`` (plus
    :data:`WARM_MARGIN`) as an additional pruning cutoff.  Subtrees that
    cannot beat the known solution are cut immediately, but the returned
    optimum is bit-identical to a cold run, which keeps the ECO audit's
    replay guarantees intact even across equal-cost ties.
    """

    bound: float

    @property
    def usable(self) -> bool:
        return self.bound < float("inf")


def solve_set_partition(
    problem: SetPartitionProblem,
    max_nodes: int = 50_000,
    warm: WarmStart | None = None,
) -> SetPartitionSolution:
    """Exact optimum of a weighted set-partitioning instance.

    Returns ``feasible=False`` when no family of disjoint subsets covers all
    elements (the composition engine always adds singleton candidates, so
    its instances are feasible by construction).  ``max_nodes`` bounds the
    branch-and-bound; on pathological instances (dense overlapping
    candidate families) the search stops there and returns the incumbent
    with ``optimal=False`` — callers can fall back to an LP-based solver.
    """
    n = problem.n_elements
    full = (1 << n) - 1

    masks = [_mask(s) for s in problem.subsets]
    weights = problem.weights
    covers: list[list[int]] = [[] for _ in range(n)]
    for i, m in enumerate(masks):
        for e in range(n):
            if m >> e & 1:
                covers[e].append(i)

    # Candidates covering each element, cheapest-first: good incumbents early.
    for e in range(n):
        covers[e].sort(key=lambda i: weights[i])

    # Admissible bound: any partition pays at least min_share[e] for each
    # uncovered element e, where a candidate of weight w covering k elements
    # contributes a share of w/k to each.
    min_share = [
        min((weights[i] / len(problem.subsets[i]) for i in covers[e]), default=float("inf"))
        for e in range(n)
    ]

    sol = SetPartitionSolution(feasible=False, objective=float("inf"))
    cutoff = float("inf")
    if warm is not None and warm.usable:
        cutoff = warm.bound + WARM_MARGIN
    memo: dict[int, float] = {}

    def bound(uncovered: int) -> float:
        total = 0.0
        e = 0
        u = uncovered
        while u:
            if u & 1:
                total += min_share[e]
            u >>= 1
            e += 1
        return total

    def search(uncovered: int, cost: float, chosen: list[int]) -> None:
        if sol.nodes_explored >= max_nodes:
            sol.optimal = False
            return
        sol.nodes_explored += 1
        if uncovered == 0:
            if cost < sol.objective:
                sol.objective = cost
                sol.chosen = list(chosen)
                sol.feasible = True
            return
        lb = bound(uncovered)
        if cost + lb >= sol.objective - 1e-12:
            sol.nodes_pruned += 1
            return
        if cost + lb >= cutoff:
            # Only the warm incumbent justifies this cut (the bound above
            # did not): count it as a warm-start prune.
            sol.nodes_pruned += 1
            sol.warm_pruned += 1
            return
        seen = memo.get(uncovered)
        if seen is not None and cost >= seen - 1e-12:
            sol.nodes_pruned += 1
            return
        memo[uncovered] = cost

        # Branch on the uncovered element with the fewest available covers.
        branch_e, branch_opts = -1, None
        e = 0
        u = uncovered
        while u:
            if u & 1:
                opts = [i for i in covers[e] if masks[i] & ~uncovered == 0]
                if not opts:
                    sol.nodes_pruned += 1
                    return  # element e cannot be covered disjointly
                if branch_opts is None or len(opts) < len(branch_opts):
                    branch_e, branch_opts = e, opts
                    if len(opts) == 1:
                        break
            u >>= 1
            e += 1

        for i in branch_opts:
            chosen.append(i)
            search(uncovered & ~masks[i], cost + weights[i], chosen)
            chosen.pop()

    search(full, 0.0, [])
    if not sol.feasible:
        sol.objective = 0.0
    reg = obs.get_registry()
    reg.counter("ilp.setpart.solves").inc()
    reg.counter("ilp.setpart.nodes_explored").inc(sol.nodes_explored)
    reg.counter("ilp.setpart.nodes_pruned").inc(sol.nodes_pruned)
    if warm is not None and warm.usable:
        reg.counter("ilp.setpart.warmstart_hits").inc()
        reg.counter("ilp.setpart.prunes_from_incumbent").inc(sol.warm_pruned)
    if not sol.optimal:
        reg.counter("ilp.setpart.budget_exhausted").inc()
    reg.histogram("ilp.setpart.nodes", obs.COUNT_BUCKETS).observe(
        sol.nodes_explored
    )
    return sol


def _mask(subset: frozenset[int]) -> int:
    m = 0
    for e in subset:
        m |= 1 << e
    return m
