"""Per-register useful-skew computation and iterative assignment."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.netlist.db import Cell
from repro.sta.timer import Timer


@dataclass
class SkewAssignment:
    """Result of a useful-skew pass."""

    offsets: dict[str, float] = field(default_factory=dict)
    wns_before: float = 0.0
    wns_after: float = 0.0

    @property
    def improved(self) -> bool:
        return self.wns_after > self.wns_before + 1e-12


def optimal_skew(d_slack: float, q_slack: float, window: float) -> float:
    """The clock offset maximizing ``min(d_slack + s, q_slack - s)``.

    The unconstrained optimum is ``s* = (q_slack - d_slack) / 2`` — it
    equalizes both sides; clamping to ``[-window, +window]`` models the
    bounded skew CTS can realize.  Unconstrained sides (infinite slack)
    yield the offset that centres the finite side at zero cost, pushing the
    full window toward the violating side.
    """
    if math.isinf(d_slack) and math.isinf(q_slack):
        return 0.0
    if math.isinf(d_slack):
        # Only Q constrained: reduce clock arrival as much as helps (s < 0
        # improves q' = q - s), limited by the window.
        return -window if q_slack < 0 else max(-window, min(0.0, -q_slack / 2))
    if math.isinf(q_slack):
        return window if d_slack < 0 else min(window, max(0.0, -d_slack / 2))
    s = (q_slack - d_slack) / 2.0
    # Never push a currently non-violating side negative: trading a met
    # endpoint for an unmet one would *increase* the failing-endpoint count
    # even when it improves the local min (possible when d + q < 0).
    if q_slack >= 0.0:
        s = min(s, q_slack)
    if d_slack >= 0.0:
        s = max(s, -d_slack)
    return max(-window, min(window, s))


def assign_useful_skew(
    timer: Timer,
    cells: list[Cell],
    window: float = 0.2,
    iterations: int = 2,
) -> SkewAssignment:
    """Assign useful-skew offsets to ``cells`` and apply them to the timer.

    Each iteration re-times, computes every cell's D/Q slack pair, and moves
    its offset toward the per-cell optimum.  A couple of iterations suffice:
    offsets interact only through register-to-register paths, and the paper
    applies skew locally to the newly composed MBRs.

    The final offsets are left installed in ``timer.skew``; the returned
    assignment records them along with the WNS before/after.
    """
    result = SkewAssignment(wns_before=timer.summary().wns)
    for _ in range(max(1, iterations)):
        # Batch per iteration: all slacks come from one timing state, all
        # offsets install together with a single invalidation — a Jacobi
        # sweep instead of per-register full re-timing.
        updates: dict[str, float] = {}
        for cell in cells:
            rs = timer.register_slack(cell)
            base = timer.skew.get(cell.name, 0.0)
            target = base + optimal_skew(rs.d_slack, rs.q_slack, window)
            target = max(-window, min(window, target))
            if abs(target - base) > 1e-12:
                updates[cell.name] = target
        if not updates:
            break
        timer.set_skews(updates)
    result.offsets = {c.name: timer.skew.get(c.name, 0.0) for c in cells}
    result.wns_after = timer.summary().wns
    return result
