"""Useful clock skew assignment (Fishburn [5], as used in the paper's flow).

After MBR composition the flow applies useful skew to the new MBRs
(Fig. 4): each register's clock arrival gets an offset that balances the
slack of its incoming (D) and outgoing (Q) paths.  Because timing
compatibility (Section 2) only merges registers with similar D/Q slacks,
one shared offset per MBR can still help every constituent bit — that is
precisely why the compatibility rules forbid mixing positive-D/negative-Q
with negative-D/positive-Q registers.
"""

from repro.skew.assign import SkewAssignment, assign_useful_skew, optimal_skew

__all__ = ["SkewAssignment", "assign_useful_skew", "optimal_skew"]
