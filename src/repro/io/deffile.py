"""DEF-subset writer/reader: die area, component placement, pin locations.

The writer emits the parts of DEF the flow needs::

    VERSION 5.8 ;
    DESIGN D1 ;
    UNITS DISTANCE MICRONS 1000 ;
    DIEAREA ( 0 0 ) ( 105000 105000 ) ;
    COMPONENTS 812 ;
      - ff0 DFF_R_X1 + PLACED ( 10000 50000 ) N ;
      - pad FIXEDCELL + FIXED ( 0 0 ) N ;
    END COMPONENTS
    PINS 34 ;
      - clk + NET clk + DIRECTION INPUT + PLACED ( 0 52000 ) N ;
    END PINS
    END DESIGN

and the reader applies placement/die/pin locations onto a design parsed
from the matching Verilog netlist.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.netlist.design import Design

_DBU = 1000  # database units per micron


def write_def(design: Design, path: str | Path) -> None:
    """Write die area, component placements, and pin locations."""

    def dbu(v: float) -> int:
        return round(v * _DBU)

    lines = [
        "VERSION 5.8 ;",
        f"DESIGN {design.name} ;",
        f"UNITS DISTANCE MICRONS {_DBU} ;",
        (
            f"DIEAREA ( {dbu(design.die.xlo)} {dbu(design.die.ylo)} ) "
            f"( {dbu(design.die.xhi)} {dbu(design.die.yhi)} ) ;"
        ),
        f"COMPONENTS {len(design.cells)} ;",
    ]
    for cell in sorted(design.cells.values(), key=lambda c: c.name):
        status = "FIXED" if cell.fixed else "PLACED"
        lines.append(
            f"  - {cell.name} {cell.libcell.name} + {status} "
            f"( {dbu(cell.origin.x)} {dbu(cell.origin.y)} ) N ;"
        )
    lines.append("END COMPONENTS")
    lines.append(f"PINS {len(design.ports)} ;")
    for port in sorted(design.ports.values(), key=lambda p: p.name):
        direction = "INPUT" if port.is_input else "OUTPUT"
        net_name = port.net.name if port.net is not None else port.name
        lines.append(
            f"  - {port.name} + NET {net_name} + DIRECTION {direction} "
            f"+ PLACED ( {dbu(port.location.x)} {dbu(port.location.y)} ) N ;"
        )
    lines.append("END PINS")
    lines.append("END DESIGN")
    Path(path).write_text("\n".join(lines) + "\n")


_DIEAREA = re.compile(
    r"DIEAREA\s*\(\s*(-?\d+)\s+(-?\d+)\s*\)\s*\(\s*(-?\d+)\s+(-?\d+)\s*\)\s*;"
)
_COMPONENT = re.compile(
    r"-\s+(\S+)\s+(\S+)\s+\+\s+(PLACED|FIXED)\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)"
)
_PIN = re.compile(
    r"-\s+(\S+)\s+\+\s+NET\s+\S+\s+\+\s+DIRECTION\s+(INPUT|OUTPUT)\s+"
    r"\+\s+PLACED\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)"
)
_UNITS = re.compile(r"UNITS\s+DISTANCE\s+MICRONS\s+(\d+)\s*;")


def read_def(path: str | Path, design: Design) -> Design:
    """Apply a DEF-subset file's die/placement/pin data to ``design``.

    The design (typically fresh from :func:`repro.io.verilog.read_verilog`)
    must already contain the named components and ports; unknown names are
    an error, since a placement that does not match its netlist is corrupt.
    """
    text = Path(path).read_text()
    units = _UNITS.search(text)
    dbu = int(units.group(1)) if units else _DBU

    def um(v: str) -> float:
        return int(v) / dbu

    die = _DIEAREA.search(text)
    if die is None:
        raise ValueError(f"{path}: missing DIEAREA")
    design.die = Rect(um(die.group(1)), um(die.group(2)), um(die.group(3)), um(die.group(4)))

    in_components = False
    in_pins = False
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("COMPONENTS"):
            in_components = True
            continue
        if stripped.startswith("END COMPONENTS"):
            in_components = False
            continue
        if stripped.startswith("PINS"):
            in_pins = True
            continue
        if stripped.startswith("END PINS"):
            in_pins = False
            continue
        if in_components:
            m = _COMPONENT.search(stripped)
            if not m:
                continue
            name, libcell, status, x, y = m.groups()
            cell = design.cell(name)
            if cell.libcell.name != libcell:
                raise ValueError(
                    f"{path}: component {name} is {libcell} in DEF but "
                    f"{cell.libcell.name} in the netlist"
                )
            cell.origin = Point(um(x), um(y))
            cell.fixed = status == "FIXED"
        elif in_pins:
            m = _PIN.search(stripped)
            if not m:
                continue
            name, _direction, x, y = m.groups()
            design.ports[name].location = Point(um(x), um(y))
    return design
