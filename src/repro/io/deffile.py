"""DEF-subset writer/reader: die area, component placement, pin locations.

The writer emits the parts of DEF the flow needs::

    VERSION 5.8 ;
    DESIGN D1 ;
    UNITS DISTANCE MICRONS 1000 ;
    DIEAREA ( 0 0 ) ( 105000 105000 ) ;
    COMPONENTS 812 ;
      - ff0 DFF_R_X1 + PLACED ( 10000 50000 ) N ;
      - pad FIXEDCELL + FIXED ( 0 0 ) N ;
    END COMPONENTS
    PINS 34 ;
      - clk + NET clk + DIRECTION INPUT + PLACED ( 0 52000 ) N ;
    END PINS
    END DESIGN

and the reader applies placement/die/pin locations onto a design parsed
from the matching Verilog netlist.

Writer and reader both stream line-by-line against the design's
:class:`~repro.netlist.store.NetlistStore` — a million-component DEF never
exists as one string in memory, and applying it materializes no cell views.
"""

from __future__ import annotations

from pathlib import Path
import re
from typing import Iterator

from repro.geometry.rect import Rect
from repro.netlist.design import Design
from repro.netlist.store import FIXED, NO_ID

_DBU = 1000  # database units per micron


def _def_lines(design: Design) -> Iterator[str]:
    """The DEF text, one ``\\n``-terminated line at a time."""

    def dbu(v: float) -> int:
        return round(v * _DBU)

    store = design.store
    yield "VERSION 5.8 ;\n"
    yield f"DESIGN {design.name} ;\n"
    yield f"UNITS DISTANCE MICRONS {_DBU} ;\n"
    yield (
        f"DIEAREA ( {dbu(design.die.xlo)} {dbu(design.die.ylo)} ) "
        f"( {dbu(design.die.xhi)} {dbu(design.die.yhi)} ) ;\n"
    )
    yield f"COMPONENTS {len(store.cell_ids)} ;\n"
    for name in sorted(store.cell_ids):
        cid = store.cell_ids[name]
        status = "FIXED" if store.cell_flags[cid] & FIXED else "PLACED"
        yield (
            f"  - {name} {store.libs[store.cell_lib[cid]].libcell.name} + {status} "
            f"( {dbu(float(store.cell_x[cid]))} {dbu(float(store.cell_y[cid]))} ) N ;\n"
        )
    yield "END COMPONENTS\n"
    yield f"PINS {len(store.port_ids)} ;\n"
    for name in sorted(store.port_ids):
        pid = store.port_ids[name]
        direction = "OUTPUT" if store.port_out[pid] else "INPUT"
        nid = int(store.port_net[pid])
        net_name = store.net_name[nid] if nid != NO_ID else name
        yield (
            f"  - {name} + NET {net_name} + DIRECTION {direction} "
            f"+ PLACED ( {dbu(float(store.port_x[pid]))} {dbu(float(store.port_y[pid]))} ) N ;\n"
        )
    yield "END PINS\n"
    yield "END DESIGN\n"


def write_def(design: Design, path: str | Path) -> None:
    """Write die area, component placements, and pin locations (streamed)."""
    with open(path, "w") as f:
        f.writelines(_def_lines(design))


_DIEAREA = re.compile(
    r"DIEAREA\s*\(\s*(-?\d+)\s+(-?\d+)\s*\)\s*\(\s*(-?\d+)\s+(-?\d+)\s*\)\s*;"
)
_COMPONENT = re.compile(
    r"-\s+(\S+)\s+(\S+)\s+\+\s+(PLACED|FIXED)\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)"
)
_PIN = re.compile(
    r"-\s+(\S+)\s+\+\s+NET\s+\S+\s+\+\s+DIRECTION\s+(INPUT|OUTPUT)\s+"
    r"\+\s+PLACED\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)"
)
_UNITS = re.compile(r"UNITS\s+DISTANCE\s+MICRONS\s+(\d+)\s*;")


def read_def(path: str | Path, design: Design) -> Design:
    """Apply a DEF-subset file's die/placement/pin data to ``design``.

    The design (typically fresh from :func:`repro.io.verilog.read_verilog`)
    must already contain the named components and ports; unknown names are
    an error, since a placement that does not match its netlist is corrupt.

    Single pass: ``UNITS`` must precede ``DIEAREA`` and the component/pin
    sections (standard DEF ordering, and what the writer emits).
    """
    path = Path(path)
    store = design.store
    dbu = _DBU
    saw_diearea = False
    in_components = False
    in_pins = False

    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            stripped = line.strip()
            if in_components:
                if stripped.startswith("END COMPONENTS"):
                    in_components = False
                    continue
                m = _COMPONENT.search(stripped)
                if not m:
                    continue
                name, libcell, status, x, y = m.groups()
                cid = store.cell_ids.get(name)
                if cid is None:
                    raise ValueError(
                        f"{path}:{lineno}: component {name!r} is not in the netlist"
                    )
                have = store.libs[store.cell_lib[cid]].libcell.name
                if have != libcell:
                    raise ValueError(
                        f"{path}: component {name} is {libcell} in DEF but "
                        f"{have} in the netlist"
                    )
                store.cell_x[cid] = int(x) / dbu
                store.cell_y[cid] = int(y) / dbu
                if status == "FIXED":
                    store.cell_flags[cid] |= FIXED
                else:
                    store.cell_flags[cid] &= ~FIXED & 0xFF
                continue
            if in_pins:
                if stripped.startswith("END PINS"):
                    in_pins = False
                    continue
                m = _PIN.search(stripped)
                if not m:
                    continue
                name, _direction, x, y = m.groups()
                pid = store.port_ids.get(name)
                if pid is None:
                    raise ValueError(
                        f"{path}:{lineno}: pin {name!r} is not a port of the netlist"
                    )
                store.port_x[pid] = int(x) / dbu
                store.port_y[pid] = int(y) / dbu
                continue
            if stripped.startswith("COMPONENTS"):
                in_components = True
                continue
            if stripped.startswith("PINS"):
                in_pins = True
                continue
            m = _UNITS.search(stripped)
            if m:
                dbu = int(m.group(1))
                continue
            m = _DIEAREA.search(stripped)
            if m:
                design.die = Rect(
                    int(m.group(1)) / dbu,
                    int(m.group(2)) / dbu,
                    int(m.group(3)) / dbu,
                    int(m.group(4)) / dbu,
                )
                saw_diearea = True

    if not saw_diearea:
        raise ValueError(f"{path}: missing DIEAREA")
    return design
