"""Structural Verilog writer/reader (named-port netlists only).

Writes the design as one flat module::

    module D1 (clk, rst, in0, out0);
      input clk;
      output out0;
      wire n_1;
      DFF_R_X1 ff0 ( .D(n_1), .Q(n_2), .CK(clk), .RN(rst) );
    endmodule

and reads the same subset back over a given :class:`CellLibrary`.  Clock
nets are not a Verilog concept; the reader marks as clock any net driven by
a port or pin whose name contains ``clk``/``CK``/``GCK``, matching the
writer's convention (a ``// clock nets:`` comment makes it explicit and
authoritative when present).

Both directions stream: the writer emits one line at a time straight into
the file (never building the netlist text in memory), and the reader is a
single pass over the file's lines that populates the design's
:class:`~repro.netlist.store.NetlistStore` directly — no whole-file
``read()``, no intermediate AST, and no per-instance view objects.  Library
cells are resolved once per name per parse and their pin tables come from
the store's interned :class:`~repro.netlist.store.LibRecord`.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterator

from repro.geometry.rect import Rect
from repro.library.cells import PinDirection
from repro.library.library import CellLibrary
from repro.netlist.design import Design
from repro.netlist.store import NO_ID

_ID = r"[A-Za-z_][\w$]*"


def _escape(name: str) -> str:
    """Verilog-identifier-safe name (our generators already comply)."""
    if re.fullmatch(_ID, name):
        return name
    return "\\" + name + " "


def _verilog_lines(design: Design) -> Iterator[str]:
    """The module text, one ``\\n``-terminated line at a time."""
    store = design.store
    clock_nets = sorted(name for name in store.net_ids if store.net_clock[store.net_ids[name]])
    yield f"// repro structural netlist for design {design.name}\n"
    yield f"// clock nets: {' '.join(clock_nets)}\n"
    port_names = sorted(store.port_ids)
    for name in port_names:
        nid = int(store.port_net[store.port_ids[name]])
        if nid != NO_ID and store.net_name[nid] != name:
            # Verilog identifies a port with its net; our DB allows distinct
            # names, so record the binding explicitly for the reader.
            yield f"// port_net: {name} {store.net_name[nid]}\n"
    port_list = ", ".join(_escape(name) for name in port_names)
    yield f"module {_escape(design.name)} ({port_list});\n"
    for name in port_names:
        kind = "output" if store.port_out[store.port_ids[name]] else "input"
        yield f"  {kind} {_escape(name)};\n"
    for name in sorted(store.net_ids):
        if name not in store.port_ids:
            yield f"  wire {_escape(name)};\n"
    # Connected-pin order is the library pin order sorted by pin name; it is
    # a per-libcell constant, so compute it once per LibRecord.
    pin_order: dict[int, list[int]] = {}
    for name in sorted(store.cell_ids):
        cid = store.cell_ids[name]
        rec = store.libs[store.cell_lib[cid]]
        order = pin_order.get(id(rec))
        if order is None:
            order = pin_order[id(rec)] = sorted(
                range(rec.n_pins), key=lambda i: rec.pins[i].name
            )
        pin0 = int(store.cell_pin0[cid])
        conns = ", ".join(
            f".{rec.pins[i].name}({_escape(store.net_name[store.pin_net[pin0 + i]])})"
            for i in order
            if store.pin_net[pin0 + i] != NO_ID
        )
        yield f"  {_escape(rec.libcell.name)} {_escape(name)} ( {conns} );\n"
    yield "endmodule\n"


def write_verilog(design: Design, path: str | Path) -> None:
    """Write the design as a flat structural Verilog module (streamed)."""
    with open(path, "w") as f:
        f.writelines(_verilog_lines(design))


_MODULE = re.compile(rf"module\s+({_ID})\s*\((?P<ports>[^)]*)\)\s*;")
_DECL = re.compile(rf"^\s*(input|output|wire)\s+({_ID})\s*;\s*$")
_INST = re.compile(rf"^\s*({_ID})\s+({_ID})\s*\(\s*(?P<conns>.*)\)\s*;\s*$")
_CONN = re.compile(rf"\.({_ID})\s*\(\s*({_ID})\s*\)")
_CLOCKS = re.compile(r"//\s*clock nets:\s*(.*)$")
_PORT_NET = re.compile(rf"//\s*port_net:\s*({_ID})\s+({_ID})\s*$")
_CLOCKISH = re.compile(r"(^|_)g?clk", re.IGNORECASE)


def read_verilog(
    path: str | Path,
    library: CellLibrary,
    die: Rect | None = None,
) -> Design:
    """Parse a flat structural module written by :func:`write_verilog`.

    Positions are not part of Verilog: cells land at the origin until a DEF
    file (:func:`repro.io.deffile.read_def`) places them.  ``die`` defaults
    to a unit placeholder re-sized by the DEF reader.

    The parse is a single pass over the file's lines.  Declarations must
    precede instances (the writer guarantees this); nets and ports are
    created when the first instance appears, in the same order the previous
    whole-file reader used — wires first, then port bindings.
    """
    path = Path(path)
    design: Design | None = None
    explicit_clocks: set[str] | None = None
    port_net: dict[str, str] = {}
    directions: dict[str, PinDirection] = {}
    wires: list[str] = []
    decls_flushed = False
    # One library resolution per libcell *name* per parse; each entry carries
    # the store's interned pin table so instance pins bind by integer index.
    lib_cache: dict[str, tuple] = {}

    def is_clock(name: str) -> bool:
        if explicit_clocks is not None:
            return name in explicit_clocks
        return bool(_CLOCKISH.search(name))

    def flush_decls() -> None:
        nonlocal decls_flushed
        decls_flushed = True
        for name in wires:
            if name not in design.nets:
                design.add_net_raw(name, is_clock=is_clock(name))
        for name, direction in directions.items():
            bound = port_net.get(name, name)
            nid = design.store.net_ids.get(bound)
            if nid is None:
                nid = design.add_net_raw(bound, is_clock=is_clock(bound))
            pid = design.add_port_raw(name, direction is PinDirection.OUTPUT, 0.0, 0.0)
            design.store.link((pid << 1) | 1, nid)

    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            if line.lstrip().startswith("//"):
                m = _CLOCKS.search(line)
                if m:
                    explicit_clocks = set(m.group(1).split())
                    continue
                m = _PORT_NET.search(line)
                if m:
                    port_net[m.group(1)] = m.group(2)
                continue
            if design is None:
                m = _MODULE.search(line)
                if m:
                    design = Design(m.group(1), library, die or Rect(0, 0, 1, 1))
                continue
            decl = _DECL.match(line)
            if decl:
                if decls_flushed:
                    raise ValueError(
                        f"{path}:{lineno}: declaration after first instance"
                    )
                kind, name = decl.groups()
                if kind == "wire":
                    wires.append(name)
                else:
                    directions[name] = (
                        PinDirection.INPUT if kind == "input" else PinDirection.OUTPUT
                    )
                continue
            inst = _INST.match(line)
            if inst is None or inst.group(1) == "module":
                continue
            if not decls_flushed:
                flush_decls()
            libcell_name, inst_name, conns = inst.group(1), inst.group(2), inst.group("conns")
            cached = lib_cache.get(libcell_name)
            if cached is None:
                try:
                    libcell = library.cell(libcell_name)
                except KeyError:
                    raise ValueError(
                        f"{path}:{lineno}: unknown library cell {libcell_name!r} "
                        f"(instance {inst_name!r})"
                    ) from None
                store = design.store
                rec = store.libs[store.intern_libcell(libcell)]
                cached = lib_cache[libcell_name] = (libcell, rec.pin_index)
            libcell, pin_index = cached
            store = design.store
            cid = design.add_cell_raw(inst_name, libcell, 0.0, 0.0)
            pin0 = int(store.cell_pin0[cid])
            for pin_name, net_name in _CONN.findall(conns):
                idx = pin_index.get(pin_name)
                if idx is None:
                    raise ValueError(
                        f"{path}:{lineno}: cell {inst_name!r} ({libcell_name}) "
                        f"has no pin {pin_name!r}"
                    )
                nid = store.net_ids.get(net_name)
                if nid is None:
                    raise ValueError(
                        f"{path}:{lineno}: instance {inst_name!r} references "
                        f"undeclared net {net_name!r}"
                    )
                if store.pin_net[pin0 + idx] != NO_ID:
                    raise ValueError(
                        f"{path}:{lineno}: pin {pin_name!r} of instance "
                        f"{inst_name!r} is connected twice"
                    )
                store.link((pin0 + idx) << 1, nid)

    if design is None:
        raise ValueError(f"{path}: no module found")
    if not decls_flushed:
        flush_decls()  # a module with declarations but no instances
    return design
