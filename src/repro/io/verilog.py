"""Structural Verilog writer/reader (named-port netlists only).

Writes the design as one flat module::

    module D1 (clk, rst, in0, out0);
      input clk;
      output out0;
      wire n_1;
      DFF_R_X1 ff0 ( .D(n_1), .Q(n_2), .CK(clk), .RN(rst) );
    endmodule

and reads the same subset back over a given :class:`CellLibrary`.  Clock
nets are not a Verilog concept; the reader marks as clock any net driven by
a port or pin whose name contains ``clk``/``CK``/``GCK``, matching the
writer's convention (a ``// clock nets:`` comment makes it explicit and
authoritative when present).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.library.cells import PinDirection
from repro.library.library import CellLibrary
from repro.netlist.design import Design

_ID = r"[A-Za-z_][\w$]*"


def _escape(name: str) -> str:
    """Verilog-identifier-safe name (our generators already comply)."""
    if re.fullmatch(_ID, name):
        return name
    return "\\" + name + " "


def write_verilog(design: Design, path: str | Path) -> None:
    """Write the design as a flat structural Verilog module."""
    lines: list[str] = []
    clock_nets = sorted(n.name for n in design.nets.values() if n.is_clock)
    lines.append(f"// repro structural netlist for design {design.name}")
    lines.append(f"// clock nets: {' '.join(clock_nets)}")
    for port in sorted(design.ports.values(), key=lambda p: p.name):
        if port.net is not None and port.net.name != port.name:
            # Verilog identifies a port with its net; our DB allows distinct
            # names, so record the binding explicitly for the reader.
            lines.append(f"// port_net: {port.name} {port.net.name}")
    ports = sorted(design.ports.values(), key=lambda p: p.name)
    port_list = ", ".join(_escape(p.name) for p in ports)
    lines.append(f"module {_escape(design.name)} ({port_list});")
    for port in ports:
        kind = "input" if port.is_input else "output"
        lines.append(f"  {kind} {_escape(port.name)};")
    for net in sorted(design.nets.values(), key=lambda n: n.name):
        if net.name not in design.ports:
            lines.append(f"  wire {_escape(net.name)};")
    for cell in sorted(design.cells.values(), key=lambda c: c.name):
        conns = ", ".join(
            f".{pin.name}({_escape(pin.net.name)})"
            for pin in sorted(cell.pins.values(), key=lambda p: p.name)
            if pin.net is not None
        )
        lines.append(f"  {_escape(cell.libcell.name)} {_escape(cell.name)} ( {conns} );")
    lines.append("endmodule")
    Path(path).write_text("\n".join(lines) + "\n")


_MODULE = re.compile(rf"module\s+({_ID})\s*\((?P<ports>[^)]*)\)\s*;")
_DECL = re.compile(rf"^\s*(input|output|wire)\s+({_ID})\s*;\s*$")
_INST = re.compile(rf"^\s*({_ID})\s+({_ID})\s*\(\s*(?P<conns>.*)\)\s*;\s*$")
_CONN = re.compile(rf"\.({_ID})\s*\(\s*({_ID})\s*\)")
_CLOCKS = re.compile(r"//\s*clock nets:\s*(.*)$", re.MULTILINE)
_PORT_NET = re.compile(rf"//\s*port_net:\s*({_ID})\s+({_ID})\s*$", re.MULTILINE)


def read_verilog(
    path: str | Path,
    library: CellLibrary,
    die: Rect | None = None,
) -> Design:
    """Parse a flat structural module written by :func:`write_verilog`.

    Positions are not part of Verilog: cells land at the origin until a DEF
    file (:func:`repro.io.deffile.read_def`) places them.  ``die`` defaults
    to a unit placeholder re-sized by the DEF reader.
    """
    text = Path(path).read_text()
    module = _MODULE.search(text)
    if module is None:
        raise ValueError(f"{path}: no module found")
    design = Design(module.group(1), library, die or Rect(0, 0, 1, 1))

    explicit_clocks: set[str] = set()
    clocks_match = _CLOCKS.search(text)
    if clocks_match:
        explicit_clocks = set(clocks_match.group(1).split())

    directions: dict[str, PinDirection] = {}
    wires: list[str] = []
    instances: list[tuple[str, str, str]] = []
    for line in text.splitlines():
        decl = _DECL.match(line)
        if decl:
            kind, name = decl.groups()
            if kind == "wire":
                wires.append(name)
            else:
                directions[name] = (
                    PinDirection.INPUT if kind == "input" else PinDirection.OUTPUT
                )
            continue
        inst = _INST.match(line)
        if inst and inst.group(1) != "module":
            instances.append((inst.group(1), inst.group(2), inst.group("conns")))

    def is_clock(name: str) -> bool:
        if explicit_clocks:
            return name in explicit_clocks
        return bool(re.search(r"(^|_)g?clk", name, re.IGNORECASE))

    port_net = {m.group(1): m.group(2) for m in _PORT_NET.finditer(text)}
    for name in wires:
        if name not in design.nets:
            design.add_net(name, is_clock=is_clock(name))
    for name in directions:
        bound = port_net.get(name, name)
        if bound not in design.nets:
            design.add_net(bound, is_clock=is_clock(bound))
        design.add_port(name, directions[name], Point(0.0, 0.0))
        design.connect(design.ports[name], design.nets[bound])

    for libcell_name, inst_name, conns in instances:
        cell = design.add_cell(inst_name, library.cell(libcell_name))
        for pin_name, net_name in _CONN.findall(conns):
            design.connect(cell.pin(pin_name), design.net(net_name))
    return design
