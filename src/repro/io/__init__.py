"""Design and library file I/O.

Text formats so designs round-trip through files the way the paper's flow
consumes placed netlists:

* :mod:`repro.io.liberty` — a Liberty-style cell library subset
  (``.lib``-flavoured: cells, pins, capacitance, area, register attributes);
* :mod:`repro.io.verilog` — structural Verilog netlists (module, wires,
  named-port instances);
* :mod:`repro.io.deffile` — a DEF subset (DIEAREA, COMPONENTS with
  placement and FIXED, PINS with locations).

Each writer/reader pair round-trips everything the composition flow needs;
they are subsets, not full-language parsers.
"""

from repro.io.liberty import read_liberty, write_liberty
from repro.io.verilog import read_verilog, write_verilog
from repro.io.deffile import read_def, write_def

__all__ = [
    "read_liberty",
    "write_liberty",
    "read_verilog",
    "write_verilog",
    "read_def",
    "write_def",
]
