"""Liberty-style library writer/reader (a strict subset).

The format mirrors the familiar ``.lib`` structure::

    library (repro28) {
      wire_cap_per_um : 0.0002 ;
      cell (DFF_R_4B_X1) {
        area : 6.68 ;
        cell_kind : register ;
        width_bits : 4 ;
        ...
        pin (D0) { direction : input ; capacitance : 0.0008 ; offset : (0.0, 0.125) ; }
      }
    }

Only the attributes this reproduction's cell model carries are emitted, and
the reader accepts exactly what the writer produces (plus whitespace and
``/* */`` comments), so libraries round-trip losslessly.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.library.cells import (
    ClockBufferCell,
    ClockGateCell,
    CombCell,
    LibCell,
    PinDesc,
    PinDirection,
    RegisterCell,
)
from repro.library.functional import FunctionalClass, ResetKind, ScanStyle
from repro.library.library import CellLibrary, Technology


def _liberty_lines(library: CellLibrary):
    """The library text, one ``\\n``-terminated line at a time."""
    yield f"library ({library.name}) {{\n"
    tech = library.technology
    yield f"  wire_cap_per_um : {tech.wire_cap_per_um!r} ;\n"
    yield f"  wire_delay_per_um : {tech.wire_delay_per_um!r} ;\n"
    yield f"  row_height : {tech.row_height!r} ;\n"
    yield f"  site_width : {tech.site_width!r} ;\n"
    for cell in sorted(library.cells(), key=lambda c: c.name):
        for line in _cell_lines(cell):
            yield line + "\n"
    yield "}\n"


def write_liberty(library: CellLibrary, path: str | Path) -> None:
    """Serialize a library to Liberty-style text (streamed)."""
    with open(path, "w") as f:
        f.writelines(_liberty_lines(library))


def _cell_lines(cell: LibCell) -> list[str]:
    lines = [f"  cell ({cell.name}) {{"]

    def attr(name, value):
        lines.append(f"    {name} : {value!r} ;")

    attr("area", cell.area)
    attr("width", cell.width)
    attr("height", cell.height)
    attr("leakage", cell.leakage)
    attr("drive_resistance", cell.drive_resistance)
    attr("intrinsic_delay", cell.intrinsic_delay)
    if isinstance(cell, RegisterCell):
        attr("cell_kind", "register")
        attr("width_bits", cell.width_bits)
        attr("scan_style", cell.scan_style.value)
        attr("clock_pin_cap", cell.clock_pin_cap)
        attr("setup", cell.setup)
        attr("hold", cell.hold)
        attr("clk_to_q", cell.clk_to_q)
        fc = cell.func_class
        attr("is_latch", int(fc.is_latch))
        attr("reset_kind", fc.reset.value)
        attr("has_enable", int(fc.has_enable))
        attr("is_scan", int(fc.is_scan))
        attr("negedge", int(fc.negedge))
    elif isinstance(cell, ClockBufferCell):
        attr("cell_kind", "clock_buffer")
        attr("max_fanout_cap", cell.max_fanout_cap)
    elif isinstance(cell, ClockGateCell):
        attr("cell_kind", "clock_gate")
    else:
        attr("cell_kind", "comb")
        attr("function", getattr(cell, "function", "buf"))

    for pin in cell.pins:
        lines.append(
            f"    pin ({pin.name}) {{ direction : {pin.direction.value} ; "
            f"capacitance : {pin.cap!r} ; offset : ({pin.dx!r}, {pin.dy!r}) ; }}"
        )
    lines.append("  }")
    return lines


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------

_TOKEN = re.compile(
    r"""
    library\s*\(\s*(?P<lib>[\w.\-]+)\s*\)\s*\{
    | cell\s*\(\s*(?P<cell>[\w.\-]+)\s*\)\s*\{
    | pin\s*\(\s*(?P<pin>[\w.\-]+)\s*\)\s*\{(?P<pinbody>[^}]*)\}
    | (?P<attr>[\w]+)\s*:\s*(?P<value>[^;]+);
    | (?P<close>\})
    """,
    re.VERBOSE,
)


_COMMENT_OPEN = re.compile(r"/\*")
_COMMENT_CLOSE = re.compile(r"\*/")


def _strip_comments(lines) -> "Iterator[str]":
    """Drop ``/* */`` comments (which may span lines) from a line stream."""
    in_comment = False
    for line in lines:
        out = []
        pos = 0
        while pos < len(line):
            if in_comment:
                m = _COMMENT_CLOSE.search(line, pos)
                if m is None:
                    pos = len(line)
                else:
                    in_comment = False
                    pos = m.end()
            else:
                m = _COMMENT_OPEN.search(line, pos)
                if m is None:
                    out.append(line[pos:])
                    pos = len(line)
                else:
                    out.append(line[pos : m.start()])
                    in_comment = True
                    pos = m.end()
        yield "".join(out)


def read_liberty(path: str | Path) -> CellLibrary:
    """Parse a Liberty-subset file back into a :class:`CellLibrary`.

    Single streaming pass: constructs (other than block comments) must not
    span lines, which is what the writer produces.  Each completed cell is
    built and added as soon as its closing brace is read, so the parse holds
    at most one cell's attributes at a time.
    """
    path = Path(path)
    library: CellLibrary | None = None
    lib_attrs: dict[str, str] = {}
    current: dict | None = None
    cells_done = 0

    with open(path) as f:
        for lineno, line in enumerate(_strip_comments(f), start=1):
            for match in _TOKEN.finditer(line):
                if match.group("lib"):
                    library = CellLibrary(match.group("lib"))
                elif match.group("cell"):
                    if library is None:
                        raise ValueError(f"{path}:{lineno}: cell outside library")
                    current = {"name": match.group("cell"), "attrs": {}, "pins": []}
                elif match.group("pin"):
                    if current is None:
                        raise ValueError(f"{path}:{lineno}: pin outside cell")
                    current["pins"].append((match.group("pin"), match.group("pinbody")))
                elif match.group("attr"):
                    target = current["attrs"] if current is not None else lib_attrs
                    target[match.group("attr")] = match.group("value").strip().strip("'\"")
                elif match.group("close"):
                    if current is not None:
                        try:
                            library.add(_build_cell(current))
                        except KeyError as exc:
                            raise ValueError(
                                f"{path}:{lineno}: cell {current['name']!r} is "
                                f"missing required attribute {exc.args[0]!r}"
                            ) from None
                        cells_done += 1
                        current = None

    if library is None:
        raise ValueError(f"{path}: not a liberty-subset file")
    library.technology = Technology(
        wire_cap_per_um=float(lib_attrs.get("wire_cap_per_um", 0.0002)),
        wire_delay_per_um=float(lib_attrs.get("wire_delay_per_um", 0.0005)),
        row_height=float(lib_attrs.get("row_height", 1.0)),
        site_width=float(lib_attrs.get("site_width", 0.2)),
    )
    return library


def _parse_pin(name: str, body: str) -> PinDesc:
    direction_m = re.search(r"direction\s*:\s*(\w+)", body)
    cap_m = re.search(r"capacitance\s*:\s*([\d.eE+-]+)", body)
    offset_m = re.search(r"offset\s*:\s*\(([\d.eE+-]+),\s*([\d.eE+-]+)\)", body)
    if direction_m is None or cap_m is None or offset_m is None:
        raise ValueError(
            f"pin {name!r} is missing direction/capacitance/offset: {body.strip()!r}"
        )
    dx, dy = offset_m.groups()
    return PinDesc(name, PinDirection(direction_m.group(1)), float(cap_m.group(1)), float(dx), float(dy))


def _build_cell(spec: dict) -> LibCell:
    a = spec["attrs"]
    pins = tuple(_parse_pin(n, b) for n, b in spec["pins"])
    base = dict(
        name=spec["name"],
        area=float(a["area"]),
        width=float(a["width"]),
        height=float(a["height"]),
        leakage=float(a["leakage"]),
        pins=pins,
        drive_resistance=float(a["drive_resistance"]),
        intrinsic_delay=float(a["intrinsic_delay"]),
    )
    kind = a.get("cell_kind", "comb")
    if kind == "register":
        func_class = FunctionalClass(
            is_latch=bool(int(a["is_latch"])),
            reset=ResetKind(a["reset_kind"]),
            has_enable=bool(int(a["has_enable"])),
            is_scan=bool(int(a["is_scan"])),
            negedge=bool(int(a["negedge"])),
        )
        return RegisterCell(
            **base,
            width_bits=int(a["width_bits"]),
            func_class=func_class,
            scan_style=ScanStyle(a["scan_style"]),
            clock_pin_cap=float(a["clock_pin_cap"]),
            setup=float(a["setup"]),
            hold=float(a["hold"]),
            clk_to_q=float(a["clk_to_q"]),
        )
    if kind == "clock_buffer":
        return ClockBufferCell(**base, max_fanout_cap=float(a["max_fanout_cap"]))
    if kind == "clock_gate":
        return ClockGateCell(**base)
    return CombCell(**base, function=a.get("function", "buf"))
