"""The D1-D5 benchmark presets.

Scaled-down analogues of the paper's five industrial designs, shaped to
match Table 1's *structure* (relative register counts, composable
fractions, MBR-richness) rather than its absolute sizes: the paper's chips
have 0.5-2M cells; a pure-Python flow reproduces the same algorithmic
behaviour at a few thousand registers in seconds.  Each preset keeps the
design's distinguishing trait:

* **D1** — baseline mix, ~62% composable;
* **D2** — highest composable fraction (75% in the paper) and the largest
  relative register reduction (39%);
* **D3** — many registers but a lower composable share, more clock gating;
* **D4** — already 8-bit-rich after synthesis (the paper: composition
  "doesn't provide significant reduction in the clock tree capacitance"
  because the dominant 8-bit MBRs are skipped);
* **D5** — like D3's size with D2-like composability.

Use ``scale`` to grow any preset toward paper-scale runs.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.generator import BenchmarkSpec

D1 = BenchmarkSpec(
    name="D1",
    seed=101,
    n_registers=700,
    width_mix={1: 0.40, 2: 0.30, 4: 0.22, 8: 0.08},
    dont_touch_fraction=0.14,
    scan_fraction=0.5,
    clock_gate_fraction=0.5,
)

D2 = BenchmarkSpec(
    name="D2",
    seed=202,
    n_registers=900,
    width_mix={1: 0.55, 2: 0.25, 4: 0.15, 8: 0.05},
    dont_touch_fraction=0.06,
    scan_fraction=0.45,
    clock_gate_fraction=0.4,
    cluster_size=24,
)

D3 = BenchmarkSpec(
    name="D3",
    seed=303,
    n_registers=850,
    width_mix={1: 0.35, 2: 0.30, 4: 0.25, 8: 0.10},
    dont_touch_fraction=0.18,
    scan_fraction=0.6,
    clock_gate_fraction=0.65,
)

D4 = BenchmarkSpec(
    name="D4",
    seed=404,
    n_registers=800,
    width_mix={1: 0.15, 2: 0.15, 4: 0.25, 8: 0.45},
    dont_touch_fraction=0.15,
    scan_fraction=0.5,
    clock_gate_fraction=0.55,
    cluster_size=18,
)

D5 = BenchmarkSpec(
    name="D5",
    seed=505,
    n_registers=850,
    width_mix={1: 0.45, 2: 0.28, 4: 0.18, 8: 0.09},
    dont_touch_fraction=0.08,
    scan_fraction=0.55,
    clock_gate_fraction=0.5,
)

# The million-register scale preset.  All-banked single-bit registers with a
# shallow comb cloud keep generation O(n) and the footprint inside the
# documented peak-RSS budget (< ~1.5 KB/register); legalization, clock
# fitting, and the probe Timer are skipped — the scale path exercises
# storage, I/O, and windowed composition, not full-design STA.
HUGE = BenchmarkSpec(
    name="huge",
    seed=606,
    n_registers=1_000_000,
    width_mix={1: 1.0},
    bank_fraction=1.0,
    dont_touch_fraction=0.05,
    scan_fraction=0.0,
    clock_gate_fraction=0.02,
    comb_per_bit=0.3,
    reg2reg_fraction=0.9,
    reg2reg_window=64,
    legalize=False,
    fit_clock=False,
    build_timer=False,
)

PRESETS: dict[str, BenchmarkSpec] = {s.name: s for s in (D1, D2, D3, D4, D5, HUGE)}


def preset(name: str, scale: float = 1.0) -> BenchmarkSpec:
    """A preset spec, optionally scaled in register count."""
    spec = PRESETS[name]
    if scale == 1.0:
        return spec
    return replace(spec, n_registers=max(20, int(spec.n_registers * scale)))
