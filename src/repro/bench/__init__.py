"""Benchmark designs.

* :mod:`repro.bench.paper_example` — the paper's six-register worked
  example (Figs. 1-3), reconstructed geometrically so that every candidate
  weight in Fig. 3 is reproduced.
* :mod:`repro.bench.generator` — the synthetic "industrial" design
  generator behind the D1-D5 benchmarks of Table 1 (the paper's designs are
  proprietary 28 nm chips; see DESIGN.md for the substitution rationale).
"""

from repro.bench.paper_example import PAPER_EDGES, build_paper_example
from repro.bench.generator import BenchmarkSpec, DesignBundle, generate_design
from repro.bench.presets import D1, D2, D3, D4, D5, PRESETS, preset

__all__ = [
    "PAPER_EDGES",
    "build_paper_example",
    "BenchmarkSpec",
    "DesignBundle",
    "generate_design",
    "D1",
    "D2",
    "D3",
    "D4",
    "D5",
    "PRESETS",
    "preset",
]
