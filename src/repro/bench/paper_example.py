"""The paper's worked example (Figs. 1-3), reconstructed.

Six registers A..F of the same functional class: A, B, C, D are 1-bit flops,
E is a 4-bit MBR from synthesis, F is 2-bit.  The compatibility graph of
Fig. 1 has the edges listed in :data:`PAPER_EDGES`; the placement reproduces
the blocking relations of Fig. 2:

* register D's center lies inside the test polygons of {A,B,C}, {B,C}, and
  {B,C,F}, giving those candidates weights 6, 4, and 8;
* every other candidate's polygon is clean, so Fig. 3's weight table comes
  out exactly (two figure entries are inconsistent with the paper's own
  formula and are documented in EXPERIMENTS.md: Fig. 3 prints BF = CF = 0.50
  although B+F carries 3 bits, so w = 1/3 by the Section 3.2 formula — the
  value this reproduction computes).
"""

from __future__ import annotations

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.library.cells import PinDirection
from repro.library.functional import DFF_R
from repro.library.library import CellLibrary
from repro.netlist.design import Design

#: Fig. 1's edge set.  {A,B,C,D} is a 4-clique; F pairs with B and C;
#: E pairs with A and C.
PAPER_EDGES: tuple[tuple[str, str], ...] = (
    ("A", "B"),
    ("A", "C"),
    ("A", "D"),
    ("B", "C"),
    ("B", "D"),
    ("C", "D"),
    ("B", "F"),
    ("C", "F"),
    ("A", "E"),
    ("C", "E"),
)

#: Register bit widths in the example (Fig. 1: "A1 is a single-bit
#: register, while E4 is a 4-bit MBR").  F carries 2 bits so that {B,F}
#: maps to a 3-bit MBR and {B,C,F} to a 4-bit one, matching the text.
PAPER_WIDTHS: dict[str, int] = {"A": 1, "B": 1, "C": 1, "D": 1, "E": 4, "F": 2}

#: Placement origins realizing Fig. 2's blocking relations (footprints are
#: width x 1 row; coordinates in microns, laid out on a 14 x 11 die).
PAPER_ORIGINS: dict[str, Point] = {
    "A": Point(2.0, 6.0),
    "B": Point(8.0, 4.0),
    "C": Point(2.0, 2.0),
    "D": Point(5.0, 3.2),
    "E": Point(0.0, 8.0),
    "F": Point(8.0, 0.5),
}


def build_paper_example(library: CellLibrary) -> Design:
    """Build the six-register design of Figs. 1-2 over ``library``.

    Registers share one clock and one reset; each register bit has a
    buffered input from a port and a buffered output to a port, giving the
    STA real paths with comfortable, similar slacks (the example's premise
    is that all six registers are timing compatible).

    The example's register footprints are intentionally simple (bit-width
    microns wide, one row tall), so a dedicated library instance is built
    with `repro.library.default_lib` geometry close enough: we use the
    DFF_R family of the provided library and scale positions in microns.
    """
    design = Design("paper_example", library, Rect(0.0, 0.0, 16.0, 12.0))
    clk = design.add_net("clk", is_clock=True)
    rst = design.add_net("rst")
    design.connect(design.add_port("clk", PinDirection.INPUT, Point(0.0, 0.0)), clk)
    design.connect(design.add_port("rst", PinDirection.INPUT, Point(0.0, 0.5)), rst)

    port_y = 0.0
    for name, width in PAPER_WIDTHS.items():
        libcell = library.register_cells(DFF_R, width)[0]
        cell = design.add_cell(name, libcell, PAPER_ORIGINS[name])
        design.connect(cell.pin(libcell.clock_pin_name), clk)
        design.connect(cell.pin("RN"), rst)
        for bit in range(width):
            port_y += 0.4
            din = design.add_port(
                f"in_{name}{bit}", PinDirection.INPUT, Point(0.0, port_y)
            )
            dout = design.add_port(
                f"out_{name}{bit}", PinDirection.OUTPUT, Point(16.0, port_y)
            )
            n_d = design.add_net(f"d_{name}{bit}")
            n_q = design.add_net(f"q_{name}{bit}")
            design.connect(din, n_d)
            design.connect(cell.pin(libcell.d_pin(bit)), n_d)
            design.connect(cell.pin(libcell.q_pin(bit)), n_q)
            design.connect(dout, n_q)
    return design


def paper_example_graph(design: Design, infos):
    """The Fig. 1 compatibility graph with ``RegisterInfo`` node payloads.

    The paper presents the graph as *given* (its edges already encode the
    compatibility checks on the real industrial design); reproducing the
    figures requires using exactly this topology rather than re-deriving
    edges from the synthetic stand-in design.
    """
    import networkx as nx

    graph = nx.Graph()
    for name in PAPER_WIDTHS:
        graph.add_node(name, info=infos[name])
    graph.add_edges_from(PAPER_EDGES)
    return graph
