"""Synthetic "industrial" benchmark generator.

The paper evaluates on five proprietary 28 nm designs rich in MBRs after
logic synthesis.  This generator produces placed designs with the
*distributions* the composition algorithms key on:

* registers in physical clusters sharing clock gating and control nets
  (so functional-compatibility groups have realistic sizes);
* a configurable register width mix (Fig. 5 'before' histograms — e.g. D4
  is dominated by 8-bit MBRs already);
* a configurable composable fraction (Table 1's Comp-Regs / Total-Regs) via
  designer-excluded and already-maximal registers;
* register-to-register pipelines through small combinational clouds, with
  the clock period auto-fit so a target fraction of endpoints fails timing
  (the paper's designs average ~38% failing endpoints);
* scan chains with partitions and ordered sections.

Everything is seeded and deterministic.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.library.cells import PinDirection, RegisterCell
from repro.library.functional import DFF_R, DFF_R_S, FunctionalClass, ScanStyle
from repro.library.library import CellLibrary
from repro.netlist.design import Design
from repro.placement.legalize import legalize
from repro.placement.rows import PlacementRows
from repro.scan.model import ScanChain, ScanModel
from repro.sta.timer import Timer


@dataclass(frozen=True)
class BenchmarkSpec:
    """Parameters of one synthetic design."""

    name: str
    seed: int
    n_registers: int = 600
    width_mix: dict[int, float] = field(
        default_factory=lambda: {1: 0.45, 2: 0.25, 4: 0.20, 8: 0.10}
    )
    cluster_size: int = 20
    cluster_spread: float = 6.0
    bank_fraction: float = 0.7
    bank_columns: int = 4
    utilization: float = 0.35
    comb_per_bit: float = 1.2
    dont_touch_fraction: float = 0.12
    scan_fraction: float = 0.5
    ordered_chain_fraction: float = 0.15
    chain_length: int = 40
    clock_gate_fraction: float = 0.5
    failing_endpoint_fraction: float = 0.38
    reg2reg_fraction: float = 0.6
    # Scale knobs (the `huge` preset tightens these; the D1-D5 defaults
    # reproduce the historical designs bit-for-bit).
    reg2reg_window: int = 400  # candidate Q-net window per register
    legalize: bool = True  # False: snap to the row grid, skip overlap repair
    fit_clock: bool = True  # False: clock_period = 1.0, no probe Timer
    build_timer: bool = True  # False: bundle.timer is None


@dataclass
class DesignBundle:
    """A generated design plus the side models the flow needs."""

    spec: BenchmarkSpec
    design: Design
    scan_model: ScanModel
    timer: Timer | None
    clock_period: float


def _pick_width(rng: random.Random, mix: dict[int, float]) -> int:
    r = rng.random()
    acc = 0.0
    for width, frac in sorted(mix.items()):
        acc += frac
        if r <= acc:
            return width
    return max(mix)


def _die_for(spec: BenchmarkSpec, library: CellLibrary) -> Rect:
    """Size the die so the expected cell area hits the target utilization."""
    avg_width = sum(w * f for w, f in spec.width_mix.items())
    reg_area = spec.n_registers * avg_width * 1.8  # ~area/bit of the library
    comb_area = spec.n_registers * avg_width * spec.comb_per_bit * 0.6
    side = math.sqrt((reg_area + comb_area) / spec.utilization)
    side = max(side, 30.0)
    return Rect(0.0, 0.0, round(side, 1), round(side, 1))


def generate_design(spec: BenchmarkSpec, library: CellLibrary) -> DesignBundle:
    """Generate one benchmark design (placed, timed, scan-stitched)."""
    rng = random.Random(spec.seed)
    die = _die_for(spec, library)
    design = Design(spec.name, library, die)
    scan_model = ScanModel()

    clk_root = design.add_net("clk", is_clock=True)
    design.connect(design.add_port("clk", PinDirection.INPUT, Point(0.0, die.yhi / 2)), clk_root)

    n_clusters = max(1, spec.n_registers // spec.cluster_size)
    clusters = _make_clusters(design, spec, rng, n_clusters, clk_root)
    registers, reg_clusters = _make_registers(design, spec, library, rng, clusters)
    _make_datapaths(design, spec, library, rng, registers, reg_clusters)
    _make_scan(design, spec, rng, registers, reg_clusters, scan_model)
    if spec.legalize:
        _legalize_all(design, library)
    else:
        _snap_to_grid(design, library)

    period = _fit_clock_period(design, spec, library) if spec.fit_clock else 1.0
    timer = Timer(design, clock_period=period) if spec.build_timer else None
    return DesignBundle(
        spec=spec, design=design, scan_model=scan_model, timer=timer, clock_period=period
    )


# ---------------------------------------------------------------------------
# Pieces
# ---------------------------------------------------------------------------


@dataclass
class _Cluster:
    index: int
    center: Point
    clock_net: object
    reset_net: object
    func_class: FunctionalClass
    scan: bool


def _make_clusters(design, spec, rng, n_clusters, clk_root) -> list[_Cluster]:
    """Cluster centers with shared clock (possibly gated) and reset nets."""
    die = design.die
    clusters: list[_Cluster] = []
    rst_shared = design.add_net("rst")
    design.connect(
        design.add_port("rst", PinDirection.INPUT, Point(0.0, die.yhi / 2 - 2)), rst_shared
    )
    for i in range(n_clusters):
        margin = 8.0
        center = Point(
            rng.uniform(die.xlo + margin, die.xhi - margin),
            rng.uniform(die.ylo + margin, die.yhi - margin),
        )
        scan = rng.random() < spec.scan_fraction
        func_class = DFF_R_S if scan else DFF_R
        clock_net = clk_root
        if rng.random() < spec.clock_gate_fraction:
            icg = design.add_cell(f"icg_{i}", "ICG_X2", center)
            gated = design.add_net(f"gclk_{i}", is_clock=True)
            en = design.add_net(f"gen_{i}")
            design.connect(
                design.add_port(f"en_{i}", PinDirection.INPUT, Point(0.0, 1.0 + 0.1 * i)), en
            )
            design.connect(icg.pin("CK"), clk_root)
            design.connect(icg.pin("EN"), en)
            design.connect(icg.pin("GCK"), gated)
            clock_net = gated
        # A few distinct reset domains.
        if i % 7 == 3:
            rst = design.add_net(f"rst_{i}")
            design.connect(
                design.add_port(f"rst_{i}", PinDirection.INPUT, Point(0.0, 3.0 + 0.1 * i)), rst
            )
        else:
            rst = rst_shared
        clusters.append(_Cluster(i, center, clock_net, rst, func_class, scan))
    return clusters


def _make_registers(design, spec, library, rng, clusters) -> tuple[list[int], list[int]]:
    """Place each cluster's registers.

    A ``bank_fraction`` of clusters is *banked*: registers sit in abutting
    rows of ``bank_columns``, the way placed synthesis output looks for bus
    registers — these banks provide the clean (blocker-free) polygons the
    placement-aware weights reward.  Banked clusters are width-sorted (a bus
    bank is width-homogeneous), so non-composable already-maximal MBRs pool
    at the bank edge instead of blocking every group.  The rest scatter with
    a Gaussian around the cluster center, interleaving with other registers.

    Designer-excluded (dont_touch) registers concentrate in a subset of
    clusters, matching how real constraints follow module boundaries.

    Returns cell *ids* plus a parallel cluster-index list, not views: at a
    million registers a retained view list (with its pin maps) — or a
    per-cell ``{"cluster": i}`` attrs dict — costs more than the whole
    slotted store, so the datapath and scan stages materialize views
    transiently and read cluster membership from the parallel list.
    """
    registers: list[int] = []
    reg_clusters: list[int] = []
    die = design.die
    n_clusters = len(clusters)
    per_cluster = [spec.n_registers // n_clusters] * n_clusters
    for i in range(spec.n_registers % n_clusters):
        per_cluster[i] += 1

    reg_id = 0
    for cluster, count in zip(clusters, per_cluster):
        banked = (cluster.index / max(n_clusters, 1)) < spec.bank_fraction
        # Designer exclusions follow module boundaries: a cluster is either
        # entirely dont_touch or entirely free.
        dt_rate = 1.0 if rng.random() < spec.dont_touch_fraction else 0.0
        widths = [_pick_width(rng, spec.width_mix) for _ in range(count)]
        if banked:
            widths.sort(reverse=True)  # homogeneous runs; 8-bit pool first
        x_off, row, in_row = 0.0, 0, 0
        # Synthesis emits internal-scan (or non-scan) registers; multi-SI/SO
        # variants only enter through MBR mapping (Section 4.1).
        styles = (
            (ScanStyle.INTERNAL,) if cluster.func_class.is_scan else (ScanStyle.NONE,)
        )
        for width in widths:
            libcell: RegisterCell = rng.choice(
                library.register_cells(cluster.func_class, width, scan_styles=styles)
            )
            if banked:
                if in_row >= spec.bank_columns:
                    x_off, row, in_row = 0.0, row + 1, 0
                x = cluster.center.x + x_off
                y = cluster.center.y + row * libcell.height
                x_off, in_row = x_off + libcell.width, in_row + 1
            else:
                x = cluster.center.x + rng.gauss(0, spec.cluster_spread)
                y = cluster.center.y + rng.gauss(0, spec.cluster_spread)
            x = min(max(x, die.xlo), die.xhi - libcell.width)
            y = min(max(y, die.ylo), die.yhi - libcell.height)
            cell = design.add_cell(
                f"reg_{reg_id}",
                libcell,
                Point(x, y),
                dont_touch=rng.random() < dt_rate,
            )
            reg_id += 1
            design.connect(cell.pin(libcell.clock_pin_name), cluster.clock_net)
            if "RN" in cell.pins:
                design.connect(cell.pin("RN"), cluster.reset_net)
            registers.append(cell._cid)
            reg_clusters.append(cluster.index)
    return registers, reg_clusters


def _make_datapaths(design, spec, library, rng, registers, reg_clusters) -> None:
    """Wire every register bit: D from a comb cloud fed by an earlier
    register's Q (or an input port), Q into later clouds or an output port.

    Register order provides the topological guarantee: cloud sources are
    always earlier bits, so the netlist is acyclic by construction.

    The Q-net candidate list carries ``(net id, x, y, owner index)`` tuples
    — raw ids and floats, never views — so its footprint stays a few dozen
    bytes per bit at million-register scale.
    """
    die = design.die
    store = design.store
    comb_names = ["BUF_X1", "BUF_X2", "INV_X1", "INV_X2", "INV_X4"]
    q_nets: list[tuple[int, float, float, int]] = []  # driven Q nets
    port_count = 0
    for reg_index, cid in enumerate(registers):
        cell = store.cell_view(cid)
        lc: RegisterCell = cell.libcell
        # Path structure is chosen per *register*, not per bit: a real bus
        # register's bits come from the same pipeline stage and have highly
        # correlated slacks — the property timing compatibility (Section 2)
        # and useful skew rely on.  Each bit still gets its own cloud cells.
        use_reg = bool(q_nets) and rng.random() < spec.reg2reg_fraction
        # Cloud depth is a *cluster* property: registers of one module sit at
        # the same pipeline stage, so their path depths — and hence slack
        # signs — align, which is what makes them timing compatible.
        cluster_index = reg_clusters[reg_index]
        depth = 1 + (cluster_index * 2654435761 >> 4) % max(1, round(spec.comb_per_bit * 2))
        if use_reg:
            # Prefer a source register launched near this one: local wiring
            # keeps per-cluster slacks spatially smooth.
            window = q_nets[-spec.reg2reg_window :]
            here = cell.center
            hx, hy = here.x, here.y
            window.sort(key=lambda t: abs(t[1] - hx) + abs(t[2] - hy))
            pool = window[: max(4, len(window) // 8)]
        for bit in range(lc.width_bits):
            q_net = design.add_net(f"q_{cell.name}_{bit}")
            design.connect(cell.pin(lc.q_pin(bit)), q_net)

            if use_reg:
                src_nid, src_x, src_y, _ = pool[min(bit, len(pool) - 1)]
                src_net = store.net_view(src_nid)
                src_loc = Point(src_x, src_y)
            else:
                port_count += 1
                y = (port_count * 0.37) % die.height
                port = design.add_port(f"pi_{port_count}", PinDirection.INPUT, Point(0.0, y))
                src_net = design.add_net(f"pin_{port_count}")
                design.connect(port, src_net)
                src_loc = Point(0.0, y)

            d_loc = cell.pin(lc.d_pin(bit)).location
            net = src_net
            for k in range(depth):
                frac = (k + 1) / (depth + 1)
                gx = src_loc.x + (d_loc.x - src_loc.x) * frac + rng.gauss(0, 1.0)
                gy = src_loc.y + (d_loc.y - src_loc.y) * frac + rng.gauss(0, 1.0)
                gx = min(max(gx, die.xlo), die.xhi - 1.0)
                gy = min(max(gy, die.ylo), die.yhi - 1.0)
                gate = design.add_cell(
                    f"g_{cell.name}_{bit}_{k}", comb_names[(reg_index + k) % len(comb_names)],
                    Point(gx, gy),
                )
                design.connect(gate.pin("A"), net)
                net = design.add_net(f"n_{cell.name}_{bit}_{k}")
                design.connect(gate.pin("Z"), net)
            design.connect(cell.pin(lc.d_pin(bit)), net)
            q_loc = cell.pin(lc.q_pin(bit)).location
            q_nets.append((q_net._nid, q_loc.x, q_loc.y, reg_index))

    # Terminate observer-less Q nets at output ports so every launch path is
    # constrained.  A Q net with a single terminal holds only its driver.
    for i, (q_nid, _x, _y, _owner) in enumerate(q_nets):
        if store.net_count[q_nid] == 1:
            port = design.add_port(
                f"po_{i}", PinDirection.OUTPUT, Point(die.xhi, (i * 0.53) % die.height)
            )
            design.connect(port, store.net_view(q_nid))


def _make_scan(design, spec, rng, registers, reg_clusters, scan_model: ScanModel) -> None:
    """Stitch scan registers into chains by cluster locality."""
    store = design.store
    scan_pairs = [
        (cl, cid)
        for cid, cl in zip(registers, reg_clusters)
        if store.libs[store.cell_lib[cid]].libcell.func_class.is_scan
    ]
    if not scan_pairs:
        return
    scan_pairs.sort(
        key=lambda t: (t[0], float(store.cell_y[t[1]]), float(store.cell_x[t[1]]))
    )
    scan_regs = [cid for _cl, cid in scan_pairs]
    die = design.die
    se = design.add_net("se")
    design.connect(design.add_port("se", PinDirection.INPUT, Point(0.0, die.yhi - 1)), se)
    for cid in scan_regs:
        design.connect(store.cell_view(cid).pin("SE"), se)

    chain_idx = 0
    for start in range(0, len(scan_regs), spec.chain_length):
        chunk = scan_regs[start : start + spec.chain_length]
        chain = ScanChain(
            name=f"chain_{chain_idx}",
            partition="P0",  # one partition: re-stitching across chains is allowed
            cells=[store.cell_name[cid] for cid in chunk],
            ordered=rng.random() < spec.ordered_chain_fraction,
        )
        scan_model.add_chain(chain)
        # Physical stitching: port -> first SI, SO -> SI, last SO -> port.
        si_port = design.add_port(
            f"si_{chain_idx}", PinDirection.INPUT, Point(0.0, die.yhi - 2 - 0.2 * chain_idx)
        )
        si_net = design.add_net(f"si_net_{chain_idx}")
        design.connect(si_port, si_net)
        first = store.cell_view(chunk[0])
        design.connect(first.pin(first.register_cell.si_pin()), si_net)
        so_port = design.add_port(
            f"so_{chain_idx}", PinDirection.OUTPUT, Point(die.xhi, die.yhi - 2 - 0.2 * chain_idx)
        )
        so_net = design.add_net(f"so_net_{chain_idx}")
        last = store.cell_view(chunk[-1])
        design.connect(last.pin(last.register_cell.so_pin()), so_net)
        design.connect(so_port, so_net)
        chain_idx += 1
    scan_model.restitch(design)


def _legalize_all(design: Design, library: CellLibrary) -> None:
    """Legalize in two passes: registers first (they carry placement
    priority and their bank structure must survive), then the combinational
    cells around them."""
    rows = PlacementRows(
        design.die, library.technology.row_height, library.technology.site_width
    )
    registers = [c for c in design.cells.values() if c.is_register and not c.fixed]
    others = [c for c in design.cells.values() if not c.is_register and not c.fixed]
    # Pass 1: registers only, near-empty canvas — unseated comb cells are not
    # obstacles yet, only fixed cells block.
    legalize(
        design,
        rows,
        movable=registers,
        obstacles=[c for c in design.cells.values() if c.fixed],
    )
    legalize(design, rows, movable=others)


def _snap_to_grid(design: Design, library: CellLibrary) -> None:
    """Quantize every cell origin to the row/site grid in one vectorized pass.

    The prelegalized scale path (``spec.legalize = False``): with a fully
    banked register mix the generator's raw placement is already
    row-structured, so snapping is enough for scale benchmarking — overlap
    repair stays an explicitly incremental operation in the compose flow.
    """
    rows = PlacementRows(
        design.die, library.technology.row_height, library.technology.site_width
    )
    store = design.store
    live = np.fromiter(
        store.cell_ids.values(), dtype=np.int64, count=len(store.cell_ids)
    )
    if not len(live):
        return
    site = np.round((store.cell_x[live] - rows.core.xlo) / rows.site_width)
    # The rightmost legal site depends on the cell's width: rounding the
    # origin up must not push the far edge past the die boundary.
    widths = np.array(
        [rec.libcell.width for rec in store.libs], dtype=np.float64
    )[store.cell_lib[live]]
    max_site = np.floor(
        (rows.core.xhi - rows.core.xlo - widths) / rows.site_width + 1e-9
    )
    np.clip(site, 0, np.maximum(max_site, 0), out=site)
    store.cell_x[live] = rows.core.xlo + site * rows.site_width
    row = np.round((store.cell_y[live] - rows.core.ylo) / rows.row_height)
    np.clip(row, 0, max(rows.num_rows - 1, 0), out=row)
    store.cell_y[live] = rows.core.ylo + row * rows.row_height


def _fit_clock_period(design: Design, spec: BenchmarkSpec, library: CellLibrary) -> float:
    """Choose the clock period so ~``failing_endpoint_fraction`` of endpoints
    violate setup — matching the paper's observation that its designs run
    with about 38% failing endpoints at this flow stage."""
    probe = Timer(design, clock_period=1.0)
    slacks = sorted(e.slack for e in probe.endpoint_slacks())
    if not slacks:
        return 1.0
    # slack = period(=1) - setup-adjusted arrival; a different period P
    # shifts every slack by (P - 1).  Failing fraction f means the f-quantile
    # slack sits at zero.
    idx = min(int(len(slacks) * spec.failing_endpoint_fraction), len(slacks) - 1)
    shift = -slacks[idx]
    return round(max(1.0 + shift, 0.05), 4)
