"""The stage-pipeline engine.

Re-expresses the paper's Fig. 4 flow and the Section 3-4 composition
engine as pipelines of first-class, individually timed stages over a
shared :class:`FlowContext`:

* :mod:`repro.engine.stage` — the :class:`Stage` protocol,
  :class:`StageTrace` / :class:`StageRecord` runtime accounting, and the
  :func:`stage` decorator;
* :mod:`repro.engine.pipeline` — the sequential :class:`Pipeline` runner;
* :mod:`repro.engine.context` — the shared design/timer/scan context.

Making each phase an explicit, independently schedulable unit is what
lets the solve stage fan out across processes
(:mod:`repro.core.subproblem`) while analysis, application, and
legalization stay serial — and it is the seam future scaling work
(caching, sharding, async) plugs into.
"""

from repro.engine.context import FlowContext
from repro.engine.pipeline import Pipeline
from repro.engine.stage import (
    Counters,
    FunctionStage,
    Stage,
    StageOutput,
    StageRecord,
    StageTrace,
    format_counter_value,
    stage,
)

__all__ = [
    "Counters",
    "FlowContext",
    "FunctionStage",
    "Pipeline",
    "Stage",
    "StageOutput",
    "StageRecord",
    "StageTrace",
    "format_counter_value",
    "stage",
]
