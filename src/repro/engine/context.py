"""The shared context every pipeline stage reads and mutates."""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.design import Design
from repro.scan.model import ScanModel
from repro.sta.timer import Timer


@dataclass
class FlowContext:
    """What every stage of this system operates on: one placed design, its
    incremental timer, and (optionally) its scan model.

    The flow driver and the composition engine each subclass this with
    their intermediate products (metrics rows, compatibility graphs,
    chosen candidates, ...), so a stage function's signature names exactly
    the state it can touch.
    """

    design: Design
    timer: Timer
    scan_model: ScanModel | None = None
