"""Typed stages and per-stage execution traces.

Both the Fig. 4 flow and the composition engine are expressed as
sequences of first-class :class:`Stage` objects run by
:class:`repro.engine.pipeline.Pipeline`.  Every stage execution is
timed and recorded into a :class:`StageTrace` — the flow-level trace
nests the composer's own trace as the children of its ``compose``
stage, so one record tree accounts for the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, Protocol, TypeVar, runtime_checkable

CtxT = TypeVar("CtxT", contravariant=True)

#: Numeric side-facts a stage reports alongside its runtime
#: (register counts, ILP nodes, worker counts, ...).
Counters = dict[str, float]


@dataclass
class StageOutput:
    """Optional rich return value of a stage.

    Plain stages return ``None`` or a bare counter dict; stages that ran a
    nested pipeline (e.g. the flow's ``compose`` stage) attach the child
    trace here so the records nest instead of flattening.
    """

    counters: Counters = field(default_factory=dict)
    children: "StageTrace | None" = None


@runtime_checkable
class Stage(Protocol[CtxT]):
    """One schedulable unit of work over a shared context.

    A stage reads and mutates the pipeline context and optionally returns
    counters (or a :class:`StageOutput`) for its trace record.  Stages must
    not time themselves — the pipeline owns the clock.
    """

    name: str

    def run(self, ctx: CtxT) -> StageOutput | Counters | None: ...


@dataclass(frozen=True)
class FunctionStage(Generic[CtxT]):
    """A :class:`Stage` wrapping a plain function."""

    name: str
    fn: Callable[[CtxT], StageOutput | Counters | None]

    def run(self, ctx: CtxT) -> StageOutput | Counters | None:
        return self.fn(ctx)


def stage(name: str) -> Callable[[Callable[[CtxT], StageOutput | Counters | None]], FunctionStage[CtxT]]:
    """Decorator turning a context function into a named stage."""

    def wrap(fn: Callable[[CtxT], StageOutput | Counters | None]) -> FunctionStage[CtxT]:
        return FunctionStage(name, fn)

    return wrap


@dataclass
class StageRecord:
    """One timed stage execution."""

    name: str
    seconds: float = 0.0
    counters: Counters = field(default_factory=dict)
    children: "StageTrace | None" = None


@dataclass
class StageTrace:
    """The ordered record of every stage a pipeline ran.

    A pipeline that loops (the composer's incremental passes) appends one
    record per execution, so the same stage name may appear repeatedly;
    :meth:`aggregated` folds them for per-stage reporting.
    """

    records: list[StageRecord] = field(default_factory=list)

    def record(
        self,
        name: str,
        seconds: float,
        counters: Counters | None = None,
        children: "StageTrace | None" = None,
    ) -> StageRecord:
        rec = StageRecord(name, seconds, dict(counters or {}), children)
        self.records.append(rec)
        return rec

    @property
    def total_seconds(self) -> float:
        """Wall clock of all top-level records (children are contained in
        their parent's time and are not double-counted)."""
        return sum(r.seconds for r in self.records)

    def aggregated(self) -> dict[str, float]:
        """Per-stage total seconds, in first-execution order."""
        out: dict[str, float] = {}
        for rec in self.records:
            out[rec.name] = out.get(rec.name, 0.0) + rec.seconds
        return out

    def counter_total(self, name: str) -> float:
        """Sum of one counter across all top-level records."""
        return sum(r.counters.get(name, 0.0) for r in self.records)

    def stage_names(self) -> list[str]:
        return list(self.aggregated())

    def reuse_summary(self) -> dict[str, tuple[float, float]]:
        """Per-metric ``(reused, recomputed)`` totals.

        Stages that support incremental operation report matched counter
        pairs (``registers_reused``/``registers_recomputed``, ...); this
        folds every such pair across all records, recursing into children —
        the one-line answer to "how much work did the cache save".
        """
        totals: dict[str, list[float]] = {}

        def visit(trace: "StageTrace") -> None:
            for rec in trace.records:
                for key, value in rec.counters.items():
                    for suffix, slot in (("_reused", 0), ("_recomputed", 1)):
                        if key.endswith(suffix):
                            base = key[: -len(suffix)]
                            totals.setdefault(base, [0.0, 0.0])[slot] += value
                if rec.children is not None:
                    visit(rec.children)

        visit(self)
        return {k: (v[0], v[1]) for k, v in totals.items()}

    def format(self, indent: int = 0) -> str:
        """Human-readable trace: one line per record, children indented."""
        lines: list[str] = []
        if indent == 0:
            lines.append(f"{'stage':<24} {'seconds':>9}  counters")
            lines.append(f"{'-' * 24} {'-' * 9}  {'-' * 30}")
        pad = "  " * indent
        for rec in self.records:
            counters = " ".join(
                f"{k}={v:g}" for k, v in rec.counters.items()
            )
            lines.append(f"{pad + rec.name:<24} {rec.seconds:>9.4f}  {counters}")
            if rec.children is not None:
                lines.append(rec.children.format(indent + 1))
        if indent == 0:
            lines.append(f"{'-' * 24} {'-' * 9}")
            lines.append(f"{'total':<24} {self.total_seconds:>9.4f}")
        return "\n".join(lines)
