"""Typed stages and per-stage execution traces.

Both the Fig. 4 flow and the composition engine are expressed as
sequences of first-class :class:`Stage` objects run by
:class:`repro.engine.pipeline.Pipeline`.  Every stage execution is
timed and recorded into a :class:`StageTrace` — the flow-level trace
nests the composer's own trace as the children of its ``compose``
stage, so one record tree accounts for the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, Protocol, TypeVar, runtime_checkable

CtxT = TypeVar("CtxT", contravariant=True)

#: Numeric side-facts a stage reports alongside its runtime
#: (register counts, ILP nodes, worker counts, ...).  Integer-valued
#: counters stay ``int`` end-to-end — recording, totalling, and
#: formatting never coerce them to ``float``.
Counters = dict[str, int | float]


def format_counter_value(value: int | float) -> str:
    """Render one counter: ints exactly (``1500000``), floats compactly
    (``0.25``) — the one place int-vs-float display policy lives."""
    if isinstance(value, int):
        return format(value, "d")
    return format(value, "g")


@dataclass
class StageOutput:
    """Optional rich return value of a stage.

    Plain stages return ``None`` or a bare counter dict; stages that ran a
    nested pipeline (e.g. the flow's ``compose`` stage) attach the child
    trace here so the records nest instead of flattening.
    """

    counters: Counters = field(default_factory=dict)
    children: "StageTrace | None" = None


@runtime_checkable
class Stage(Protocol[CtxT]):
    """One schedulable unit of work over a shared context.

    A stage reads and mutates the pipeline context and optionally returns
    counters (or a :class:`StageOutput`) for its trace record.  Stages must
    not time themselves — the pipeline owns the clock.
    """

    name: str

    def run(self, ctx: CtxT) -> StageOutput | Counters | None: ...


@dataclass(frozen=True)
class FunctionStage(Generic[CtxT]):
    """A :class:`Stage` wrapping a plain function."""

    name: str
    fn: Callable[[CtxT], StageOutput | Counters | None]

    def run(self, ctx: CtxT) -> StageOutput | Counters | None:
        return self.fn(ctx)


def stage(name: str) -> Callable[[Callable[[CtxT], StageOutput | Counters | None]], FunctionStage[CtxT]]:
    """Decorator turning a context function into a named stage."""

    def wrap(fn: Callable[[CtxT], StageOutput | Counters | None]) -> FunctionStage[CtxT]:
        return FunctionStage(name, fn)

    return wrap


@dataclass
class StageRecord:
    """One timed stage execution."""

    name: str
    seconds: float = 0.0
    counters: Counters = field(default_factory=dict)
    children: "StageTrace | None" = None


@dataclass
class StageTrace:
    """The ordered record of every stage a pipeline ran.

    A pipeline that loops (the composer's incremental passes) appends one
    record per execution, so the same stage name may appear repeatedly;
    :meth:`aggregated` folds them for per-stage reporting.
    """

    records: list[StageRecord] = field(default_factory=list)

    def record(
        self,
        name: str,
        seconds: float,
        counters: Counters | None = None,
        children: "StageTrace | None" = None,
    ) -> StageRecord:
        rec = StageRecord(name, seconds, dict(counters or {}), children)
        self.records.append(rec)
        return rec

    @property
    def total_seconds(self) -> float:
        """Wall clock of all top-level records (children are contained in
        their parent's time and are not double-counted)."""
        return sum(r.seconds for r in self.records)

    def aggregated(self) -> dict[str, float]:
        """Per-stage total seconds, in first-execution order."""
        out: dict[str, float] = {}
        for rec in self.records:
            out[rec.name] = out.get(rec.name, 0.0) + rec.seconds
        return out

    def counter_total(self, name: str) -> int | float:
        """Sum of one counter across all top-level records.

        Int-preserving: a counter that every record reports as ``int``
        totals to an ``int`` (the zero default is ``0``, not ``0.0``)."""
        return sum(r.counters.get(name, 0) for r in self.records)

    def stage_names(self) -> list[str]:
        return list(self.aggregated())

    def reuse_summary(self) -> dict[str, tuple[int | float, int | float]]:
        """Per-metric ``(reused, recomputed)`` totals.

        Stages that support incremental operation report matched counter
        pairs (``registers_reused``/``registers_recomputed``, ...); this
        folds every such pair across all records, recursing into children —
        the one-line answer to "how much work did the cache save".
        Int counters total as ints.
        """
        totals: dict[str, list[int | float]] = {}

        def visit(trace: "StageTrace") -> None:
            for rec in trace.records:
                for key, value in rec.counters.items():
                    for suffix, slot in (("_reused", 0), ("_recomputed", 1)):
                        if key.endswith(suffix):
                            base = key[: -len(suffix)]
                            totals.setdefault(base, [0, 0])[slot] += value
                if rec.children is not None:
                    visit(rec.children)

        visit(self)
        return {k: (v[0], v[1]) for k, v in totals.items()}

    def format(self, indent: int = 0) -> str:
        """Human-readable trace: one line per record, children indented."""
        lines: list[str] = []
        if indent == 0:
            lines.append(f"{'stage':<24} {'seconds':>9}  counters")
            lines.append(f"{'-' * 24} {'-' * 9}  {'-' * 30}")
        pad = "  " * indent
        for rec in self.records:
            counters = " ".join(
                f"{k}={format_counter_value(v)}" for k, v in rec.counters.items()
            )
            lines.append(f"{pad + rec.name:<24} {rec.seconds:>9.4f}  {counters}")
            if rec.children is not None:
                lines.append(rec.children.format(indent + 1))
        if indent == 0:
            lines.append(f"{'-' * 24} {'-' * 9}")
            lines.append(f"{'total':<24} {self.total_seconds:>9.4f}")
        return "\n".join(lines)

    @classmethod
    def from_spans(
        cls, records, cat: str = "stage", prefix: str = "stage."
    ) -> "StageTrace":
        """Rebuild a stage trace as a *view* over tracer spans.

        ``records`` is an iterable of :class:`repro.obs.SpanRecord`;
        spans of category ``cat`` become stage records (the ``prefix`` the
        pipeline adds to span names is stripped), nested by their span
        parent links — so the tracer is the single source of timing truth
        and a ``StageTrace`` can always be derived from it.  Counters are
        recovered from numeric span args.
        """
        records = list(records)
        stage_spans = [r for r in records if r.cat == cat]
        stage_ids = {r.id for r in stage_spans}
        parent_of = {r.id: r.parent_id for r in records}

        def stage_ancestor(pid: int | None) -> int | None:
            # Hop over intermediate non-stage spans (a compose stage runs
            # its nested pipeline under an eco.recompose span, say) to the
            # nearest enclosing stage span.
            while pid is not None and pid not in stage_ids:
                pid = parent_of.get(pid)
            return pid

        root = cls()
        traces: dict[int, "StageTrace"] = {}
        # Spans finish children-first; sort by start so records keep
        # pipeline order within each nesting level, parents before children.
        for rec in sorted(stage_spans, key=lambda r: r.start_us):
            name = rec.name
            if prefix and name.startswith(prefix):
                name = name[len(prefix):]
            counters: Counters = {
                k: v
                for k, v in rec.args.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            }
            own = traces[rec.id] = cls()
            parent = stage_ancestor(rec.parent_id)
            target = root if parent is None else traces.get(parent, root)
            target.record(
                name, rec.dur_us / 1e6, counters=counters or None, children=own
            )

        def prune(trace: "StageTrace") -> None:
            for r in trace.records:
                if r.children is not None:
                    prune(r.children)
                    if not r.children.records:
                        r.children = None

        prune(root)
        return root
