"""The pipeline runner: timed, traced, sequential stage execution.

Every stage execution opens a ``repro.obs`` span (category ``"stage"``)
carrying the stage's counters as args, and is recorded into the run's
:class:`~repro.engine.stage.StageTrace`.  The tracer is the timing
substrate — the trace records reuse the span's clock, and
:meth:`StageTrace.from_spans <repro.engine.stage.StageTrace.from_spans>`
can rebuild an equivalent trace from the tracer alone — while
``StageTrace`` remains the in-process structured view stages and reports
consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Generic

from repro import obs
from repro.engine.stage import Counters, CtxT, Stage, StageOutput, StageTrace


def _timer_stats(ctx) -> "object | None":
    """The context's ``timer.stats`` snapshot, when the context has one."""
    timer = getattr(ctx, "timer", None)
    stats = getattr(timer, "stats", None)
    if stats is None:
        return None
    return stats.snapshot()


def _merge_timing_counters(
    counters: Counters | None, before, after
) -> Counters | None:
    """Fold the stage's timer-effort deltas into its counter dict.

    Only nonzero deltas appear, so stages that never touched the timer keep
    their trace lines clean; ``retimed_nodes`` vs ``graph_nodes`` is the
    dirty-cone size the stage actually paid for.  Counter names match the
    :class:`~repro.sta.timer.TimerStats` field names exactly (asserted by
    ``tests/engine/test_engine.py``), and the integer stats stay ints.
    """
    if before is None or after is None:
        return counters
    deltas = {
        "changes_applied": after.changes_applied - before.changes_applied,
        "incremental_timings": after.incremental_timings
        - before.incremental_timings,
        "full_timings": after.full_timings - before.full_timings,
        "retimed_nodes": after.retimed_nodes - before.retimed_nodes,
        "kernel_sweeps": after.kernel_sweeps - before.kernel_sweeps,
    }
    extra = {k: v for k, v in deltas.items() if v}
    if extra and (after.incremental_timings > before.incremental_timings):
        extra["graph_nodes"] = after.graph_nodes
    if not extra:
        return counters
    merged = dict(counters or {})
    for k, v in extra.items():
        merged.setdefault(k, v)
    return merged


@dataclass(frozen=True)
class Pipeline(Generic[CtxT]):
    """An ordered sequence of stages sharing one context.

    ``run`` executes every stage in order, timing each into the trace.
    Passing the same trace to repeated ``run`` calls (the composer's
    incremental passes, the heuristic's rounds) accumulates records.
    """

    stages: tuple[Stage[CtxT], ...]

    def __post_init__(self) -> None:
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in pipeline: {names}")

    def run(self, ctx: CtxT, trace: StageTrace | None = None) -> StageTrace:
        trace = trace if trace is not None else StageTrace()
        hb = obs.get_heartbeat()
        if hb is not None:
            hb.run_started(self.stage_names())
        for st in self.stages:
            before = _timer_stats(ctx)
            if hb is not None:
                hb.stage_started(st.name)
            with obs.span(f"stage.{st.name}", cat="stage") as sp:
                t0 = time.perf_counter()
                out = st.run(ctx)
                seconds = time.perf_counter() - t0
                counters: Counters | None
                children = None
                if isinstance(out, StageOutput):
                    counters, children = out.counters, out.children
                else:
                    counters = out
                counters = _merge_timing_counters(
                    counters, before, _timer_stats(ctx)
                )
                if counters:
                    sp.set(**counters)
            trace.record(st.name, seconds, counters=counters, children=children)
            if hb is not None:
                hb.stage_finished(st.name, seconds)
        return trace

    def stage_names(self) -> list[str]:
        return [s.name for s in self.stages]
