"""The pipeline runner: timed, traced, sequential stage execution."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Generic

from repro.engine.stage import Counters, CtxT, Stage, StageOutput, StageTrace


@dataclass(frozen=True)
class Pipeline(Generic[CtxT]):
    """An ordered sequence of stages sharing one context.

    ``run`` executes every stage in order, timing each into the trace.
    Passing the same trace to repeated ``run`` calls (the composer's
    incremental passes, the heuristic's rounds) accumulates records.
    """

    stages: tuple[Stage[CtxT], ...]

    def __post_init__(self) -> None:
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in pipeline: {names}")

    def run(self, ctx: CtxT, trace: StageTrace | None = None) -> StageTrace:
        trace = trace if trace is not None else StageTrace()
        for st in self.stages:
            t0 = time.perf_counter()
            out = st.run(ctx)
            seconds = time.perf_counter() - t0
            counters: Counters | None
            children = None
            if isinstance(out, StageOutput):
                counters, children = out.counters, out.children
            else:
                counters = out
            trace.record(st.name, seconds, counters=counters, children=children)
        return trace

    def stage_names(self) -> list[str]:
        return [s.name for s in self.stages]
