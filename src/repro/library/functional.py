"""Register functional classes and scan styles.

Section 2 of the paper: registers are *functionally compatible* when their
control pins (reset, scan-enable, clock-gating enable) are driven by the same
nets and a functionally equivalent MBR exists in the library.  The library
side of that test is the :class:`FunctionalClass` — the signature of a
register's function; the netlist side (same control *nets*) lives in
``repro.core.compatibility``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ResetKind(enum.Enum):
    """Asynchronous control behaviour of a register."""

    NONE = "none"
    RESET = "reset"  # async active-low clear
    SET = "set"  # async active-low preset
    RESET_SET = "reset_set"


class ScanStyle(enum.Enum):
    """How scan is implemented in a register cell (Section 2).

    ``INTERNAL``
        The MBR has a single SI/SO pair; bits are chained inside the cell in
        fixed order.  Registers in ordered scan sections may only merge when
        the internal chain preserves their scan order.
    ``MULTI``
        One SI/SO pair per bit; several scan chains may cross the same MBR
        (shared scan-enable), at the cost of external chain routing —
        Section 4.1 penalizes these cells during mapping.
    ``NONE``
        Non-scan register.
    """

    NONE = "none"
    INTERNAL = "internal"
    MULTI = "multi"


@dataclass(frozen=True, slots=True)
class FunctionalClass:
    """The functional signature of a register cell family.

    Two register *cells* can implement the same design registers only when
    their functional classes are equal — same storage kind, same asynchronous
    controls, same synchronous enable, same clock edge.  Scan style is *not*
    part of the class: a non-scan group may map to internal- or multi-scan
    variants of the same class, and mapping (Section 4.1) picks among them.
    """

    is_latch: bool = False
    reset: ResetKind = ResetKind.NONE
    has_enable: bool = False
    is_scan: bool = False
    negedge: bool = False

    @property
    def name(self) -> str:
        """A compact mnemonic, e.g. ``DFF_R_S`` for a scan reset flop."""
        parts = ["LAT" if self.is_latch else "DFF"]
        if self.reset in (ResetKind.RESET, ResetKind.RESET_SET):
            parts.append("R")
        if self.reset in (ResetKind.SET, ResetKind.RESET_SET):
            parts.append("P")
        if self.has_enable:
            parts.append("E")
        if self.is_scan:
            parts.append("S")
        if self.negedge:
            parts.append("N")
        return "_".join(parts)

    def control_pin_names(self) -> tuple[str, ...]:
        """The control pins (beyond the clock) a cell of this class carries."""
        pins: list[str] = []
        if self.reset in (ResetKind.RESET, ResetKind.RESET_SET):
            pins.append("RN")
        if self.reset in (ResetKind.SET, ResetKind.RESET_SET):
            pins.append("SN")
        if self.has_enable:
            pins.append("EN")
        if self.is_scan:
            pins.append("SE")
        return tuple(pins)


# The classes exercised by the default library and benchmark generator.
DFF = FunctionalClass()
DFF_R = FunctionalClass(reset=ResetKind.RESET)
DFF_S = FunctionalClass(is_scan=True)
DFF_R_S = FunctionalClass(reset=ResetKind.RESET, is_scan=True)
DFF_RE_S = FunctionalClass(reset=ResetKind.RESET, has_enable=True, is_scan=True)
LAT = FunctionalClass(is_latch=True)

STANDARD_CLASSES: tuple[FunctionalClass, ...] = (
    DFF,
    DFF_R,
    DFF_S,
    DFF_R_S,
    DFF_RE_S,
    LAT,
)
