"""Library cell definitions: combinational, register/MBR, clock cells.

Timing uses the linear model Section 4.1 of the paper describes: a cell's
delay through an output pin is ``intrinsic + drive_resistance * load_cap``.
A cell with low drive resistance drives more capacitance with less delay.
The paper uses CCS tables in production; the linear model preserves the
ordering that drives every mapping decision.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.library.functional import FunctionalClass, ResetKind, ScanStyle


class PinDirection(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True, slots=True)
class PinDesc:
    """A library pin: name, direction, input capacitance, and the pin's
    offset from the cell origin (used by the Section 4.2 placement LP)."""

    name: str
    direction: PinDirection
    cap: float = 0.0  # pF, meaningful for inputs
    dx: float = 0.0  # microns from cell origin
    dy: float = 0.0


@dataclass(frozen=True)
class LibCell:
    """Base class for every library cell."""

    name: str
    area: float  # um^2
    width: float  # um (footprint)
    height: float  # um (row height)
    leakage: float  # nW
    pins: tuple[PinDesc, ...]
    drive_resistance: float  # kOhm-equivalent: ns per pF of load
    intrinsic_delay: float  # ns

    def pin(self, name: str) -> PinDesc:
        for p in self.pins:
            if p.name == name:
                return p
        raise KeyError(f"{self.name} has no pin {name!r}")

    def has_pin(self, name: str) -> bool:
        return any(p.name == name for p in self.pins)

    @property
    def input_pins(self) -> tuple[PinDesc, ...]:
        return tuple(p for p in self.pins if p.direction is PinDirection.INPUT)

    @property
    def output_pins(self) -> tuple[PinDesc, ...]:
        return tuple(p for p in self.pins if p.direction is PinDirection.OUTPUT)

    def delay(self, load_cap: float) -> float:
        """Pin-to-pin delay under the linear drive model (ns)."""
        return self.intrinsic_delay + self.drive_resistance * load_cap


@dataclass(frozen=True)
class CombCell(LibCell):
    """A combinational cell (INV, BUF, NAND2, ...)."""

    function: str = "buf"


@dataclass(frozen=True)
class ClockBufferCell(LibCell):
    """A clock buffer used by CTS-lite."""

    max_fanout_cap: float = 0.1  # pF the buffer is allowed to drive


@dataclass(frozen=True)
class ClockGateCell(LibCell):
    """An integrated clock gate (ICG).  Registers behind different ICGs have
    different effective clocks and are not functionally compatible."""


@dataclass(frozen=True)
class RegisterCell(LibCell):
    """A (multi-bit) register library cell.

    ``width_bits``
        Number of D/Q bit pairs.  Single-bit flops have ``width_bits == 1``.
    ``func_class``
        The functional signature shared by all widths of the family.
    ``scan_style``
        ``NONE`` / ``INTERNAL`` (one SI/SO, bits chained inside) / ``MULTI``
        (SI/SO per bit).
    ``clock_pin_cap``
        Capacitance of the (single, shared) clock pin — the quantity MBR
        composition reduces at the clock-tree leaves.
    ``setup`` / ``clk_to_q``
        Setup time at D and clock-to-Q delay intrinsic (per bit; the linear
        drive term is added on top of ``clk_to_q``).
    """

    width_bits: int = 1
    func_class: FunctionalClass = field(default_factory=FunctionalClass)
    scan_style: ScanStyle = ScanStyle.NONE
    clock_pin_cap: float = 0.001
    setup: float = 0.03
    hold: float = 0.01
    clk_to_q: float = 0.08

    # -- per-bit pin naming --------------------------------------------------

    def d_pin(self, bit: int) -> str:
        """Name of the D pin of ``bit`` (``D`` for 1-bit cells)."""
        self._check_bit(bit)
        return "D" if self.width_bits == 1 else f"D{bit}"

    def q_pin(self, bit: int) -> str:
        """Name of the Q pin of ``bit`` (``Q`` for 1-bit cells)."""
        self._check_bit(bit)
        return "Q" if self.width_bits == 1 else f"Q{bit}"

    def si_pin(self, bit: int = 0) -> str:
        """Scan-in pin: the cell's single SI for internal scan, per-bit SIn
        for multi-scan cells."""
        if self.scan_style is ScanStyle.MULTI:
            self._check_bit(bit)
            return "SI" if self.width_bits == 1 else f"SI{bit}"
        return "SI"

    def so_pin(self, bit: int = 0) -> str:
        """Scan-out pin (see :meth:`si_pin`)."""
        if self.scan_style is ScanStyle.MULTI:
            self._check_bit(bit)
            return "SO" if self.width_bits == 1 else f"SO{bit}"
        return "SO"

    def _check_bit(self, bit: int) -> None:
        if not 0 <= bit < self.width_bits:
            raise IndexError(f"{self.name}: bit {bit} out of range 0..{self.width_bits - 1}")

    # -- derived metrics -------------------------------------------------------

    @property
    def clock_pin_name(self) -> str:
        return "CKN" if self.func_class.negedge else "CK"

    @property
    def area_per_bit(self) -> float:
        """Area divided by bit count — the quantity the incomplete-MBR
        acceptance rule of Section 3 compares."""
        return self.area / self.width_bits

    @property
    def clock_cap_per_bit(self) -> float:
        return self.clock_pin_cap / self.width_bits

    def control_pins(self) -> tuple[str, ...]:
        """Control pin names this cell carries (shared across bits)."""
        pins = list(self.func_class.control_pin_names())
        return tuple(pins)

    def data_input_pins(self) -> tuple[str, ...]:
        return tuple(self.d_pin(b) for b in range(self.width_bits))

    def data_output_pins(self) -> tuple[str, ...]:
        return tuple(self.q_pin(b) for b in range(self.width_bits))


def register_pin_descs(
    width_bits: int,
    func_class: FunctionalClass,
    scan_style: ScanStyle,
    cell_width: float,
    cell_height: float,
    d_cap: float,
    clock_pin_cap: float,
    ctrl_cap: float,
) -> tuple[PinDesc, ...]:
    """Build the pin list of a register cell with evenly spread bit pins.

    D pins sit on the left edge, Q pins on the right, control pins on the
    bottom edge — a schematic but geometrically consistent layout so the
    Section 4.2 placement LP has real (dx, dy) pin offsets to work with.
    """
    pins: list[PinDesc] = []
    for b in range(width_bits):
        frac = (b + 0.5) / width_bits
        dname = "D" if width_bits == 1 else f"D{b}"
        qname = "Q" if width_bits == 1 else f"Q{b}"
        pins.append(PinDesc(dname, PinDirection.INPUT, d_cap, 0.0, frac * cell_height))
        pins.append(PinDesc(qname, PinDirection.OUTPUT, 0.0, cell_width, frac * cell_height))
    clk_name = "CKN" if func_class.negedge else "CK"
    pins.append(PinDesc(clk_name, PinDirection.INPUT, clock_pin_cap, cell_width / 2.0, 0.0))
    for i, ctrl in enumerate(func_class.control_pin_names()):
        pins.append(
            PinDesc(
                ctrl,
                PinDirection.INPUT,
                ctrl_cap,
                cell_width * (i + 1) / 5.0,
                0.0,
            )
        )
    if func_class.is_scan:
        if scan_style is ScanStyle.MULTI and width_bits > 1:
            for b in range(width_bits):
                frac = (b + 0.5) / width_bits
                pins.append(PinDesc(f"SI{b}", PinDirection.INPUT, d_cap, 0.0, frac * cell_height))
                pins.append(
                    PinDesc(f"SO{b}", PinDirection.OUTPUT, 0.0, cell_width, frac * cell_height)
                )
        else:
            pins.append(PinDesc("SI", PinDirection.INPUT, d_cap, 0.0, 0.0))
            pins.append(PinDesc("SO", PinDirection.OUTPUT, 0.0, cell_width, cell_height))
    return tuple(pins)
