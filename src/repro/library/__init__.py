"""Standard-cell library model with multi-bit register (MBR) families.

The paper composes registers into MBRs drawn from a real 28 nm standard-cell
library.  This package models the parts of such a library the flow needs:

* *functional classes* of registers (reset/set/enable/scan variants) — only
  registers of the same class with a larger-width cell in the library can be
  composed (Section 2, "functionally compatible");
* *register cells* across widths {1, 2, 3, 4, 8} and drive strengths, with
  area, pin capacitance, leakage, and a linear delay model (drive resistance
  x load + intrinsic) standing in for CCS timing (Section 4.1 describes drive
  resistance exactly this way);
* *combinational and clock cells* so the surrounding netlist, STA, and
  clock-tree substrates have real cells to work with;
* the :func:`default_library` 28 nm-flavoured library used by the synthetic
  benchmarks, exhibiting the per-bit area and clock-pin-capacitance sharing
  that makes MBR composition profitable.
"""

from repro.library.functional import FunctionalClass, ScanStyle, ResetKind
from repro.library.cells import (
    PinDesc,
    PinDirection,
    LibCell,
    CombCell,
    RegisterCell,
    ClockBufferCell,
    ClockGateCell,
)
from repro.library.library import CellLibrary
from repro.library.default_lib import default_library, DefaultLibraryParams

__all__ = [
    "FunctionalClass",
    "ScanStyle",
    "ResetKind",
    "PinDesc",
    "PinDirection",
    "LibCell",
    "CombCell",
    "RegisterCell",
    "ClockBufferCell",
    "ClockGateCell",
    "CellLibrary",
    "default_library",
    "DefaultLibraryParams",
]
