"""The default 28 nm-flavoured library used by tests and benchmarks.

The numbers are schematic but shaped like a real low-power 28 nm library:

* per-bit register area falls with MBR width (shared clock internals and
  well/tap overhead), roughly 20% smaller per bit at 8 bits;
* the shared clock pin of an 8-bit MBR presents far less capacitance than
  eight single-bit clock pins — the effect MBR composition exploits;
* higher drive strengths have lower drive resistance and more area;
* multi-SI/SO scan MBRs are slightly smaller than internal-scan ones
  (Section 4.1), but cost external scan routing, which mapping penalizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.library.cells import (
    ClockBufferCell,
    ClockGateCell,
    CombCell,
    PinDesc,
    PinDirection,
    RegisterCell,
    register_pin_descs,
)
from repro.library.functional import (
    STANDARD_CLASSES,
    FunctionalClass,
    ScanStyle,
)
from repro.library.library import CellLibrary, Technology


@dataclass(frozen=True, slots=True)
class DefaultLibraryParams:
    """Knobs of the generated library.

    ``mbr_widths``
        The MBR widths available per register class — the paper's running
        example uses exactly {1, 2, 3, 4, 8}.
    ``area_sharing`` / ``clock_cap_sharing``
        How strongly per-bit area and clock-pin capacitance shrink with
        width; see :func:`_area` and :func:`_clock_cap`.
    """

    mbr_widths: tuple[int, ...] = (1, 2, 3, 4, 8)
    drives: tuple[int, ...] = (1, 2, 4)
    bit_area: float = 2.0  # um^2 for a 1-bit X1 flop
    area_sharing: float = 0.22
    bit_clock_cap: float = 0.0008  # pF clock-pin cap of a 1-bit flop
    clock_cap_sharing: float = 0.65
    d_pin_cap: float = 0.0008
    ctrl_pin_cap: float = 0.0010
    base_drive_resistance: float = 2.0  # ns/pF at X1
    clk_to_q: float = 0.08  # ns
    setup: float = 0.03  # ns
    hold: float = 0.01  # ns
    leakage_per_um2: float = 1.5  # nW/um^2
    row_height: float = 1.0
    multi_scan_area_factor: float = 0.96
    technology: Technology = field(default_factory=Technology)


def _area_per_bit(width: int, p: DefaultLibraryParams) -> float:
    """Per-bit area of an X1 MBR: ``bit_area * (1 - sharing * (1 - 1/w))``.

    Monotone decreasing in width: 1.00x at 1 bit, ~0.81x at 8 bits with the
    default sharing of 0.22.
    """
    return p.bit_area * (1.0 - p.area_sharing * (1.0 - 1.0 / width))


def _clock_cap(width: int, p: DefaultLibraryParams) -> float:
    """Clock-pin capacitance of a width-``w`` MBR.

    ``cap(w) = c1 * ((1 - s) * w + s)`` — a shared component plus a per-bit
    component.  With sharing 0.65, an 8-bit MBR's clock pin is ~3.45x a
    single flop's, i.e. 0.43x per bit: the clock-tree load reduction the
    paper measures as "Clk Cap".
    """
    return p.bit_clock_cap * ((1.0 - p.clock_cap_sharing) * width + p.clock_cap_sharing)


def _register_name(
    func_class: FunctionalClass, width: int, drive: int, scan_style: ScanStyle
) -> str:
    suffix = ""
    if scan_style is ScanStyle.MULTI:
        suffix = "_MS"
    bits = "" if width == 1 else f"{width}B_"
    return f"{func_class.name}_{bits}X{drive}{suffix}"


def _make_register(
    func_class: FunctionalClass,
    width: int,
    drive: int,
    scan_style: ScanStyle,
    p: DefaultLibraryParams,
) -> RegisterCell:
    area = _area_per_bit(width, p) * width * (1.0 + 0.15 * (drive - 1) / max(width, 1))
    if scan_style is ScanStyle.MULTI:
        area *= p.multi_scan_area_factor
    cell_width = area / p.row_height
    clock_cap = _clock_cap(width, p) * (1.0 + 0.05 * (drive - 1))
    pins = register_pin_descs(
        width_bits=width,
        func_class=func_class,
        scan_style=scan_style,
        cell_width=cell_width,
        cell_height=p.row_height,
        d_cap=p.d_pin_cap,
        clock_pin_cap=clock_cap,
        ctrl_cap=p.ctrl_pin_cap,
    )
    return RegisterCell(
        name=_register_name(func_class, width, drive, scan_style),
        area=area,
        width=cell_width,
        height=p.row_height,
        leakage=area * p.leakage_per_um2,
        pins=pins,
        drive_resistance=p.base_drive_resistance / drive,
        intrinsic_delay=0.0,
        width_bits=width,
        func_class=func_class,
        scan_style=scan_style,
        clock_pin_cap=clock_cap,
        setup=p.setup,
        hold=p.hold,
        clk_to_q=p.clk_to_q,
    )


def _comb(name: str, function: str, area: float, drive: int, n_inputs: int,
          p: DefaultLibraryParams) -> CombCell:
    in_cap = 0.0006 * (1.0 + 0.4 * (drive - 1))
    width = area / p.row_height
    pins = [
        PinDesc(chr(ord("A") + i), PinDirection.INPUT, in_cap,
                0.0, (i + 0.5) / n_inputs * p.row_height)
        for i in range(n_inputs)
    ]
    pins.append(PinDesc("Z", PinDirection.OUTPUT, 0.0, width, p.row_height / 2.0))
    return CombCell(
        name=name,
        area=area,
        width=width,
        height=p.row_height,
        leakage=area * p.leakage_per_um2,
        pins=tuple(pins),
        drive_resistance=p.base_drive_resistance / drive,
        intrinsic_delay=0.015 + 0.005 * n_inputs,
        function=function,
    )


def default_library(params: DefaultLibraryParams | None = None) -> CellLibrary:
    """Build the default library.

    Every functional class in :data:`STANDARD_CLASSES` gets the full width x
    drive matrix; scan classes additionally get multi-SI/SO variants at
    widths > 1.  Plus combinational cells, clock buffers, and a clock gate.
    """
    p = params or DefaultLibraryParams()
    lib = CellLibrary("repro28", technology=p.technology)

    for func_class in STANDARD_CLASSES:
        widths = p.mbr_widths if not func_class.is_latch else (1, 2, 4)
        for width in widths:
            for drive in p.drives:
                base_style = ScanStyle.INTERNAL if func_class.is_scan else ScanStyle.NONE
                lib.add(_make_register(func_class, width, drive, base_style, p))
                if func_class.is_scan and width > 1:
                    lib.add(_make_register(func_class, width, drive, ScanStyle.MULTI, p))

    for drive in (1, 2, 4, 8):
        lib.add(_comb(f"INV_X{drive}", "inv", 0.4 * (1 + 0.3 * (drive - 1)), drive, 1, p))
        lib.add(_comb(f"BUF_X{drive}", "buf", 0.5 * (1 + 0.3 * (drive - 1)), drive, 1, p))
    for drive in (1, 2):
        lib.add(_comb(f"NAND2_X{drive}", "nand2", 0.6 * drive, drive, 2, p))
        lib.add(_comb(f"NOR2_X{drive}", "nor2", 0.6 * drive, drive, 2, p))
        lib.add(_comb(f"XOR2_X{drive}", "xor2", 1.0 * drive, drive, 2, p))
        lib.add(_comb(f"AND2_X{drive}", "and2", 0.7 * drive, drive, 2, p))
        lib.add(_comb(f"OR2_X{drive}", "or2", 0.7 * drive, drive, 2, p))
    lib.add(_comb("AOI21_X1", "aoi21", 0.9, 1, 3, p))
    lib.add(_comb("MUX2_X1", "mux2", 1.1, 1, 3, p))

    for drive, fanout_cap in ((2, 0.020), (4, 0.040), (8, 0.080)):
        width = 0.8 * drive / p.row_height
        lib.add(
            ClockBufferCell(
                name=f"CLKBUF_X{drive}",
                area=0.8 * drive,
                width=width,
                height=p.row_height,
                leakage=0.8 * drive * p.leakage_per_um2,
                pins=(
                    PinDesc("A", PinDirection.INPUT, 0.0010 * drive / 2, 0.0, 0.5),
                    PinDesc("Z", PinDirection.OUTPUT, 0.0, width, 0.5),
                ),
                drive_resistance=p.base_drive_resistance / drive,
                intrinsic_delay=0.02,
                max_fanout_cap=fanout_cap,
            )
        )

    icg_width = 1.6 / p.row_height
    lib.add(
        ClockGateCell(
            name="ICG_X2",
            area=1.6,
            width=icg_width,
            height=p.row_height,
            leakage=1.6 * p.leakage_per_um2,
            pins=(
                PinDesc("CK", PinDirection.INPUT, 0.0012, 0.0, 0.0),
                PinDesc("EN", PinDirection.INPUT, 0.0008, 0.0, 0.5),
                PinDesc("GCK", PinDirection.OUTPUT, 0.0, icg_width, 0.5),
            ),
            drive_resistance=1.0,
            intrinsic_delay=0.03,
        )
    )
    return lib
