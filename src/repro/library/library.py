"""The cell library container and its register-oriented queries."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.library.cells import (
    ClockBufferCell,
    ClockGateCell,
    CombCell,
    LibCell,
    RegisterCell,
)
from repro.library.functional import FunctionalClass, ScanStyle


@dataclass(frozen=True, slots=True)
class Technology:
    """Process/wire parameters shared by placement, STA, and CTS.

    ``wire_cap_per_um``
        Routed-wire capacitance per micron of Manhattan length (pF/um).
    ``wire_delay_per_um``
        Incremental path delay per micron of added wire length (ns/um); this
        is the constant Section 2 uses to convert positive slack into a
        timing-feasible move distance.
    ``row_height`` / ``site_width``
        Placement grid geometry (um).
    """

    wire_cap_per_um: float = 0.0002
    wire_delay_per_um: float = 0.0005
    row_height: float = 1.0
    site_width: float = 0.2


class CellLibrary:
    """A standard-cell library: combinational, clock, and register cells.

    Register cells are indexed by functional class so compatibility checking
    and MBR mapping (Sections 2 and 4.1) can enumerate the widths, scan
    styles, and drive strengths available to a group of design registers.
    """

    def __init__(self, name: str, technology: Technology | None = None) -> None:
        self.name = name
        self.technology = technology or Technology()
        self._cells: dict[str, LibCell] = {}
        self._registers_by_class: dict[FunctionalClass, list[RegisterCell]] = {}

    # -- population --------------------------------------------------------

    def add(self, cell: LibCell) -> None:
        if cell.name in self._cells:
            raise ValueError(f"duplicate library cell {cell.name!r}")
        self._cells[cell.name] = cell
        if isinstance(cell, RegisterCell):
            self._registers_by_class.setdefault(cell.func_class, []).append(cell)

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def cell(self, name: str) -> LibCell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"library {self.name!r} has no cell {name!r}") from None

    def cells(self) -> list[LibCell]:
        return list(self._cells.values())

    # -- register queries ----------------------------------------------------

    def register_classes(self) -> list[FunctionalClass]:
        return list(self._registers_by_class.keys())

    def registers_of_class(self, func_class: FunctionalClass) -> list[RegisterCell]:
        """All register cells of a functional class (every width/drive/scan)."""
        return list(self._registers_by_class.get(func_class, ()))

    def widths_for(
        self,
        func_class: FunctionalClass,
        scan_styles: tuple[ScanStyle, ...] | None = None,
    ) -> tuple[int, ...]:
        """Sorted distinct MBR widths available for a functional class.

        This is the ``{1, 2, 3, 4, 8}`` set of Section 3 that clique
        enumeration matches bit counts against.
        """
        widths = {
            c.width_bits
            for c in self.registers_of_class(func_class)
            if scan_styles is None or c.scan_style in scan_styles
        }
        return tuple(sorted(widths))

    def register_cells(
        self,
        func_class: FunctionalClass,
        width_bits: int,
        scan_styles: tuple[ScanStyle, ...] | None = None,
    ) -> list[RegisterCell]:
        """Register cells of a class at an exact width (all drive strengths)."""
        return [
            c
            for c in self.registers_of_class(func_class)
            if c.width_bits == width_bits
            and (scan_styles is None or c.scan_style in scan_styles)
        ]

    def max_width_for(self, func_class: FunctionalClass) -> int:
        """The largest MBR width of a class (0 when the class is absent).

        Registers already at this width form "the largest possible MBR in
        their functional-equivalence class" and are not composable (Section 5).
        """
        widths = self.widths_for(func_class)
        return widths[-1] if widths else 0

    # -- clock cells ---------------------------------------------------------

    def clock_buffers(self) -> list[ClockBufferCell]:
        return sorted(
            (c for c in self._cells.values() if isinstance(c, ClockBufferCell)),
            key=lambda c: c.max_fanout_cap,
        )

    def clock_gates(self) -> list[ClockGateCell]:
        return [c for c in self._cells.values() if isinstance(c, ClockGateCell)]

    def comb_cells(self) -> list[CombCell]:
        return [c for c in self._cells.values() if isinstance(c, CombCell)]
