"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` works through the PEP 660 path when
setuptools>=64 + wheel are available, and through this shim (legacy
`setup.py develop`) otherwise.
"""

from setuptools import setup

setup()
